package relmr

import (
	"fmt"
	"strings"
	"testing"

	"ntga/internal/core"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
)

// catalog of query shapes both engines must answer correctly.
var testQueries = []struct {
	name string
	src  string
}{
	{"single bound star", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . }`},
	{"single star with unbound", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`},
	{"two stars OS join", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`},
	{"B1: join on unbound object", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t . ?x ex:label ?xl .
}`},
	{"B2: unbound with partially bound object", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x .
  ?x ex:type ?t .
  FILTER(?x != ex:go1)
}`},
	{"B3: double unbound in one star", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x . ?g ?q ?y .
  ?x ex:type ?t .
  FILTER(?y != ex:go0)
}`},
	{"B4: non-joining unbound", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:xGO ?go . ?g ?p ?o .
  ?go ex:type ?t .
}`},
	{"OO join", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:label ?al . ?a ex:xGO ?x .
  ?b ex:synonym ?bs . ?b ex:xGO ?x .
}`},
	{"constant subject", `
PREFIX ex: <http://ex/>
SELECT ?p ?o WHERE { ex:gene2 ?p ?o . }`},
	{"constant subject joined to star", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ex:gene2 ?p ?x .
  ?x ex:label ?xl . ?x ex:type ?t .
}`},
	{"contains filter", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ?p ?o . FILTER(CONTAINS(?o, "hexokinase")) }`},
	{"three star chain", `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:xRef ?r . ?g ex:xGO ?go .
  ?go ex:type ?t .
  ?r ex:source ?src .
}`},
	{"empty result", `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:absentprop ?x . }`},
}

func TestPigAndHiveMatchReference(t *testing.T) {
	g := enginetest.BioGraph()
	for _, eng := range []engine.QueryEngine{NewPig(), NewHive()} {
		for _, tc := range testQueries {
			t.Run(eng.Name()+"/"+tc.name, func(t *testing.T) {
				enginetest.RunAndCompare(t, eng, g, tc.src)
			})
		}
	}
}

func TestPigAndHiveOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := enginetest.RandomGraph(seed, 300, 20, 6, 30)
		src := `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:p0 ?x . ?a ?p ?y .
  ?x ex:p0 ?z .
}`
		for _, eng := range []engine.QueryEngine{NewPig(), NewHive()} {
			t.Run(fmt.Sprintf("%s/seed%d", eng.Name(), seed), func(t *testing.T) {
				enginetest.RunAndCompare(t, eng, g, src)
			})
		}
	}
}

func TestWorkflowShapes(t *testing.T) {
	g := enginetest.BioGraph()
	twoStar := `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`
	// Hive: 2 star-join cycles + 1 join = 3 cycles, 2 full scans of input.
	res := enginetest.RunAndCompare(t, NewHive(), g, twoStar)
	if res.Workflow.Cycles != 3 {
		t.Errorf("Hive cycles = %d, want 3", res.Workflow.Cycles)
	}
	// Pig: split + 2 star-joins + 1 join = 4 cycles.
	res = enginetest.RunAndCompare(t, NewPig(), g, twoStar)
	if res.Workflow.Cycles != 4 {
		t.Errorf("Pig cycles = %d, want 4", res.Workflow.Cycles)
	}
	// Plan-level scan accounting (Figure 3): Hive scans input per star.
	var cl engine.Cleaner
	p, err := NewHive().Plan(enginetest.Compile(t, g, twoStar), "in", &cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scans := p.ScanCount(); scans != 2 {
		t.Errorf("Hive full scans = %d, want 2", scans)
	}
	p, err = NewPig().Plan(enginetest.Compile(t, g, twoStar), "in", &cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scans := p.ScanCount(); scans != 1 {
		t.Errorf("Pig full scans = %d, want 1 (split job only)", scans)
	}
}

func TestSelSJFirstOSPlan(t *testing.T) {
	g := enginetest.BioGraph()
	src := `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`
	res := enginetest.RunAndCompare(t, NewSelSJFirst(), g, src)
	if res.Workflow.Cycles != 2 {
		t.Errorf("Sel-SJ-first O-S cycles = %d, want 2", res.Workflow.Cycles)
	}
	var cl engine.Cleaner
	p, err := NewSelSJFirst().Plan(enginetest.Compile(t, g, src), "in", &cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scans := p.ScanCount(); scans != 2 {
		t.Errorf("Sel-SJ-first O-S full scans = %d, want 2", scans)
	}
}

func TestSelSJFirstOOPlan(t *testing.T) {
	g := enginetest.BioGraph()
	src := `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?a ex:label ?al . ?a ex:xGO ?x .
  ?b ex:synonym ?bs . ?b ex:xGO ?x .
}`
	res := enginetest.RunAndCompare(t, NewSelSJFirst(), g, src)
	if res.Workflow.Cycles != 3 {
		t.Errorf("Sel-SJ-first O-O cycles = %d, want 3", res.Workflow.Cycles)
	}
	var cl engine.Cleaner
	p, err := NewSelSJFirst().Plan(enginetest.Compile(t, g, src), "in", &cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scans := p.ScanCount(); scans != 3 {
		t.Errorf("Sel-SJ-first O-O full scans = %d, want 3 (the case study's point)", scans)
	}
}

func TestSelSJFirstRejectsUnsupported(t *testing.T) {
	g := enginetest.BioGraph()
	cases := []string{
		// Unbound star.
		`PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ?p ?x . ?x ex:type ?t . }`,
		// Single star.
		`PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . }`,
	}
	for _, src := range cases {
		q := enginetest.Compile(t, g, src)
		var cl engine.Cleaner
		if _, err := NewSelSJFirst().Plan(q, "in", &cl, nil); err == nil {
			t.Errorf("Plan(%q) succeeded, want error", src)
		}
	}
}

func TestRelationalDiskFullFailure(t *testing.T) {
	// A double-unbound star on a tiny cluster: the cross-product tuples
	// overflow the disk, reproducing the paper's ✗ bars. gene0 gets 30
	// extra triples, so its double-unbound star alone expands to ~900
	// tuples.
	g := enginetest.BioGraph()
	for i := 0; i < 30; i++ {
		g.Add(enginetest.Ex("gene0"), enginetest.Ex(fmt.Sprintf("attr%d", i)),
			enginetest.Ex(fmt.Sprintf("val%d", i)))
	}
	g.Add(enginetest.Ex("val0"), enginetest.Ex("type"), enginetest.Ex("Thing"))
	mr := enginetest.NewTinyMR(6*1024, 2)
	if err := engine.LoadGraph(mr.DFS(), "in", g); err != nil {
		t.Fatal(err)
	}
	q := enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?gl . ?g ?p ?x . ?g ?q ?y .
  ?x ex:type ?t .
}`)
	res, err := NewHive().Run(mr, q, "in")
	if err == nil {
		t.Fatal("expected disk-full failure")
	}
	if !mapreduce.ErrIsDiskFull(err) {
		t.Fatalf("err = %v, want disk-full", err)
	}
	if !res.Workflow.Failed || res.Workflow.FailedJob == "" {
		t.Errorf("workflow not marked failed: %+v", res.Workflow)
	}
	// Cleanup must have removed intermediates even on failure.
	if files := mr.DFS().List(); len(files) != 1 {
		t.Errorf("files after failed run: %v", files)
	}
}

func TestTupleEncodeDecode(t *testing.T) {
	tp := Tuple{
		{Star: 0, Subject: 5, PatIdxs: []int{0, 1, 2}, Pairs: []core.PO{{P: 1, O: 2}, {P: 3, O: 4}, {P: 5, O: 6}}},
		{Star: 1, Subject: 9, PatIdxs: []int{1}, Pairs: []core.PO{{P: 7, O: 8}}},
	}
	got, err := DecodeTuple(EncodeTuple(tp))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Subject != 5 || got[1].Star != 1 {
		t.Errorf("roundtrip = %+v", got)
	}
	if len(got[0].Pairs) != 3 || got[0].Pairs[2] != (core.PO{P: 5, O: 6}) {
		t.Errorf("pairs = %v", got[0].Pairs)
	}
	if _, err := DecodeTuple([]byte{9, 9}); err == nil {
		t.Error("corrupt tuple decoded")
	}
	if _, err := DecodeTuple(append(EncodeTuple(tp), 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestTupleJoinValueErrors(t *testing.T) {
	g := enginetest.BioGraph()
	q := enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?x . ?x ex:type ?t . }`)
	tp := Tuple{{Star: 0, Subject: 3, PatIdxs: []int{0}, Pairs: []core.PO{{P: 1, O: 2}}}}
	if _, err := tp.joinValue(q, query.Pos{Star: 1, Role: query.RoleSubject}); err == nil {
		t.Error("missing segment accepted")
	}
	if _, err := tp.joinValue(q, query.Pos{Star: 0, Role: query.RoleBoundObj, Idx: 1}); err == nil {
		t.Error("missing pattern accepted")
	}
	if v, err := tp.joinValue(q, query.Pos{Star: 0, Role: query.RoleSubject}); err != nil || v != 3 {
		t.Errorf("subject joinValue = %d, %v", v, err)
	}
}

// TestOutputRecordCountsShowRedundancy checks the headline effect: for an
// unbound-property star over a subject with multi-valued properties, the
// relational engines materialize the full cross product.
func TestOutputRecordCountsShowRedundancy(t *testing.T) {
	g := rdf.NewGraph()
	add := func(s, p string, o rdf.Term) { g.Add(enginetest.Ex(s), enginetest.Ex(p), o) }
	add("gene9", "label", rdf.NewLiteral("rxr"))
	for i := 0; i < 4; i++ {
		add("gene9", "xGO", enginetest.Ex(fmt.Sprintf("go%d", i)))
	}
	add("gene9", "synonym", rdf.NewLiteral("s1"))
	res := enginetest.RunAndCompare(t, NewHive(), g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`)
	// 1 label × 4 xGO × 6 triples = 24 expanded tuples.
	if res.OutputRecords != 24 {
		t.Errorf("OutputRecords = %d, want 24", res.OutputRecords)
	}
	want := refengine.Evaluate(enginetest.Compile(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`), g)
	if len(want) != 24 {
		t.Fatalf("reference rows = %d, want 24", len(want))
	}
}

func TestStrings(t *testing.T) {
	if !strings.Contains(NewPig().Name(), "Pig") || !strings.Contains(NewSelSJFirst().Name(), "Sel") {
		t.Error("engine names unexpected")
	}
}
