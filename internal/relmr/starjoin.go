package relmr

import (
	"bytes"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// starScanMapper emits (subject → (P,O) pair) for triples relevant to one
// star — the map side of a relational star-join over vertically-partitioned
// property relations (the VP relations are implicit: the property filter is
// applied during the scan).
type starScanMapper struct {
	q  *query.Query
	st *query.Star
	w  wire
}

func (m *starScanMapper) Map(_ string, record []byte, out mapreduce.Emitter) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	if !m.st.Subj.Match(t.S) || !m.st.TripleMatchesStar(t) {
		return nil
	}
	val, err := m.w.encodePair(m.q, core.PO{P: t.P, O: t.O})
	if err != nil {
		return err
	}
	return out.Emit(codec.EncodeID(t.S), val)
}

// decodePairs streams, decodes, and de-duplicates the sorted pair values of
// one reduce group (the engine sorts values, so duplicates are adjacent).
// Only the decoded, de-duplicated pairs are held in memory — the raw value
// slice is never materialized.
func decodePairs(w wire, q *query.Query, values mapreduce.ValueIter) ([]core.PO, error) {
	var pairs []core.PO
	var prev []byte
	for {
		v, ok, err := values.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return pairs, nil
		}
		if prev != nil && bytes.Equal(v, prev) {
			continue
		}
		prev = v
		p, err := w.decodePair(q, v)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, p)
	}
}

// patternCandidates computes, for every pattern of the star (bound then
// slots), the pairs that can match it. The second result is false if any
// pattern has no candidate (the subject does not match the star).
func patternCandidates(st *query.Star, pairs []core.PO) ([][]core.PO, bool) {
	cands := make([][]core.PO, 0, patternCount(st))
	for _, b := range st.Bound {
		var c []core.PO
		for _, p := range pairs {
			if p.P == b.Prop && b.Obj.Match(p.O) {
				c = append(c, p)
			}
		}
		if len(c) == 0 {
			return nil, false
		}
		cands = append(cands, c)
	}
	for _, sl := range st.Slots {
		var c []core.PO
		for _, p := range pairs {
			if sl.Prop.Match(p.P) && sl.Obj.Match(p.O) {
				c = append(c, p)
			}
		}
		if len(c) == 0 {
			return nil, false
		}
		cands = append(cands, c)
	}
	return cands, true
}

// crossTuples enumerates the full cross product of candidate pairs — the
// normalized n-tuple expansion whose redundancy the paper measures — and
// hands each tuple to emit.
func crossTuples(st *query.Star, subject rdf.ID, cands [][]core.PO, emit func(Tuple) error) error {
	pick := make([]core.PO, len(cands))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(cands) {
			pairs := make([]core.PO, len(pick))
			copy(pairs, pick)
			return emit(Tuple{fullSegment(st, subject, pairs)})
		}
		for _, p := range cands[i] {
			pick[i] = p
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// starJoinReducer materializes the star-join result for one subject.
type starJoinReducer struct {
	q  *query.Query
	st *query.Star
	w  wire
}

func (r *starJoinReducer) Reduce(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
	subject, err := codec.DecodeID(key)
	if err != nil {
		return err
	}
	pairs, err := decodePairs(r.w, r.q, values)
	if err != nil {
		return err
	}
	cands, ok := patternCandidates(r.st, pairs)
	if !ok {
		return nil
	}
	return crossTuples(r.st, subject, cands, func(t Tuple) error {
		rec, err := r.w.encodeTuple(r.q, t)
		if err != nil {
			return err
		}
		return out.Collect(rec)
	})
}

// starJoinJob builds the MR job computing one star-join from the triple
// relation (or a pre-filtered copy of it).
func starJoinJob(name string, q *query.Query, st *query.Star, w wire, input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:          name,
		Inputs:        []string{input},
		Output:        output,
		Mapper:        &starScanMapper{q: q, st: st, w: w},
		StreamReducer: &starJoinReducer{q: q, st: st, w: w},
	}
}

// splitMapper is Pig's SPLIT/compress pass: a map-only filter of the triple
// relation down to query-relevant triples, materialized for the star-join
// jobs to scan instead of the raw input. For unbound-property queries the
// SPLIT also materializes the full triple relation alongside the VP
// relations (the unbound pattern needs all of T), which is why the paper
// observes Pig "processes two copies of the input relation"; we model that
// second copy by emitting relevant records twice.
type splitMapper struct {
	q       *query.Query
	unbound bool
}

func (m *splitMapper) MapRecord(_ string, record []byte, out mapreduce.Collector) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	if !m.q.TripleRelevant(t) {
		return nil
	}
	if err := out.Collect(record); err != nil {
		return err
	}
	if m.unbound {
		return out.Collect(record)
	}
	return nil
}

func splitJob(q *query.Query, input, output string) *mapreduce.Job {
	unbound := false
	for _, st := range q.Stars {
		if st.HasUnbound() {
			unbound = true
		}
	}
	return &mapreduce.Job{
		Name:    "pig-split",
		Inputs:  []string{input},
		Output:  output,
		MapOnly: &splitMapper{q: q, unbound: unbound},
	}
}
