package relmr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ntga/internal/core"
	"ntga/internal/rdf"
)

// TestBinaryTupleRoundtripQuick property-tests the binary tuple codec over
// random shapes (including empty tuples and empty segments).
func TestBinaryTupleRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSegs := rng.Intn(4)
		tp := make(Tuple, nSegs)
		for s := range tp {
			nPats := rng.Intn(4)
			seg := Segment{
				Star:    rng.Intn(5),
				Subject: rdf.ID(rng.Intn(1 << 20)),
				PatIdxs: make([]int, nPats),
				Pairs:   make([]core.PO, nPats),
			}
			for i := 0; i < nPats; i++ {
				seg.PatIdxs[i] = rng.Intn(8)
				seg.Pairs[i] = core.PO{P: rdf.ID(rng.Intn(1 << 16)), O: rdf.ID(rng.Intn(1 << 24))}
			}
			tp[s] = seg
		}
		got, err := DecodeTuple(EncodeTuple(tp))
		if err != nil {
			return false
		}
		if len(got) != len(tp) {
			return false
		}
		for s := range tp {
			if got[s].Star != tp[s].Star || got[s].Subject != tp[s].Subject ||
				len(got[s].PatIdxs) != len(tp[s].PatIdxs) {
				return false
			}
			for i := range tp[s].PatIdxs {
				if got[s].PatIdxs[i] != tp[s].PatIdxs[i] || got[s].Pairs[i] != tp[s].Pairs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDecodeTupleFuzzNoPanic feeds random bytes to the decoder: it must
// error, never panic.
func TestDecodeTupleFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := make([]byte, rng.Intn(40))
		rng.Read(p)
		_, _ = DecodeTuple(p) // must not panic
	}
}
