// Package relmr implements the relational-style MapReduce query engines the
// paper compares against: Pig-style and Hive-style one-star-join-per-cycle
// plans, plus the two alternative join groupings of the Figure 3 case study
// (SJ-per-cycle and Sel-SJ-first).
//
// These engines evaluate star subpatterns as relational joins whose results
// are fully expanded n-tuples — one (property, object) column pair per
// triple pattern. An unbound-property pattern therefore multiplies the
// bound component into every combination, which is exactly the redundancy
// the NTGA engines avoid; reproducing that footprint (and the disk-full
// failures it causes) is the point of this package.
package relmr

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// Segment is the portion of a relational tuple contributed by one star:
// the subject plus one (P, O) pair per included pattern. Pattern indices
// cover the star's patterns in bound-then-slot order: index i < len(Bound)
// is bound pattern i; index len(Bound)+j is unbound slot j.
//
// Final star-join outputs carry all patterns; the Sel-SJ-first planner also
// ships partial segments (a single join edge) between cycles.
type Segment struct {
	Star    int
	Subject rdf.ID
	PatIdxs []int
	Pairs   []core.PO
}

// Tuple is a relational (joined) tuple: one segment per star folded in so
// far.
type Tuple []Segment

// patternCount returns the number of patterns in a star.
func patternCount(st *query.Star) int { return len(st.Bound) + len(st.Slots) }

// fullSegment builds a segment covering every pattern of the star.
func fullSegment(st *query.Star, subject rdf.ID, pairs []core.PO) Segment {
	idxs := make([]int, len(pairs))
	for i := range idxs {
		idxs[i] = i
	}
	return Segment{Star: st.Index, Subject: subject, PatIdxs: idxs, Pairs: pairs}
}

// pairFor returns the (P, O) pair a segment holds for a pattern index.
func (s Segment) pairFor(patIdx int) (core.PO, bool) {
	for i, pi := range s.PatIdxs {
		if pi == patIdx {
			return s.Pairs[i], true
		}
	}
	return core.PO{}, false
}

// joinValue extracts the ID a tuple contributes at a join position.
func (t Tuple) joinValue(q *query.Query, pos query.Pos) (rdf.ID, error) {
	for _, seg := range t {
		if seg.Star != pos.Star {
			continue
		}
		if pos.Role == query.RoleSubject {
			return seg.Subject, nil
		}
		patIdx := pos.Idx
		if pos.Role == query.RoleSlotObj {
			patIdx += len(q.Stars[pos.Star].Bound)
		}
		pair, ok := seg.pairFor(patIdx)
		if !ok {
			return rdf.NoID, fmt.Errorf("relmr: tuple segment for star %d lacks pattern %d", pos.Star, patIdx)
		}
		return pair.O, nil
	}
	return rdf.NoID, fmt.Errorf("relmr: tuple has no segment for star %d", pos.Star)
}

// EncodeTuple serializes a tuple.
func EncodeTuple(t Tuple) []byte {
	var e codec.Buffer
	e.PutUvarint(uint64(len(t)))
	for _, seg := range t {
		e.PutUvarint(uint64(seg.Star))
		e.PutID(seg.Subject)
		e.PutUvarint(uint64(len(seg.PatIdxs)))
		for i, pi := range seg.PatIdxs {
			e.PutUvarint(uint64(pi))
			e.PutID(seg.Pairs[i].P)
			e.PutID(seg.Pairs[i].O)
		}
	}
	return e.Bytes()
}

// DecodeTuple parses a tuple record.
func DecodeTuple(p []byte) (Tuple, error) {
	r := codec.NewReader(p)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining())+1 {
		return nil, codec.ErrCorrupt
	}
	t := make(Tuple, n)
	for i := range t {
		star, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		subj, err := r.ID()
		if err != nil {
			return nil, err
		}
		np, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if np > uint64(r.Remaining())+1 {
			return nil, codec.ErrCorrupt
		}
		seg := Segment{Star: int(star), Subject: subj,
			PatIdxs: make([]int, np), Pairs: make([]core.PO, np)}
		for j := 0; j < int(np); j++ {
			pi, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			seg.PatIdxs[j] = int(pi)
			if seg.Pairs[j].P, err = r.ID(); err != nil {
				return nil, err
			}
			if seg.Pairs[j].O, err = r.ID(); err != nil {
				return nil, err
			}
		}
		t[i] = seg
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", codec.ErrCorrupt, r.Remaining())
	}
	return t, nil
}

// TupleRow converts a fully-expanded tuple into a binding row.
func TupleRow(q *query.Query, t Tuple) (query.Row, error) {
	row := make(query.Row, len(q.AllVars))
	for _, seg := range t {
		st := q.Stars[seg.Star]
		if st.SubjVar != "" {
			row[q.VarIdx[st.SubjVar]] = seg.Subject
		}
		for i, pi := range seg.PatIdxs {
			pair := seg.Pairs[i]
			if pi < len(st.Bound) {
				if v := st.Bound[pi].OVar; v != "" {
					row[q.VarIdx[v]] = pair.O
				}
			} else {
				sl := st.Slots[pi-len(st.Bound)]
				row[q.VarIdx[sl.PVar]] = pair.P
				if sl.OVar != "" {
					row[q.VarIdx[sl.OVar]] = pair.O
				}
			}
		}
	}
	return row, nil
}

// DecodeRows converts one final binary-wire output record into its row
// (engine.DecodeFunc).
func DecodeRows(q *query.Query) func(record []byte) ([]query.Row, error) {
	return decodeRowsWire(q, wire{})
}

// decodeRowsWire converts one final output record of either wire format.
func decodeRowsWire(q *query.Query, w wire) func(record []byte) ([]query.Row, error) {
	return func(record []byte) ([]query.Row, error) {
		t, err := w.decodeTuple(q, record)
		if err != nil {
			return nil, err
		}
		row, err := TupleRow(q, t)
		if err != nil {
			return nil, err
		}
		return []query.Row{row}, nil
	}
}
