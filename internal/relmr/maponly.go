package relmr

import (
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// starJoinTask is the map-only star-join over one subject-hash bucket of the
// partitioned triple layout. Bucket files are subject-contiguous with each
// subject's (P,O) pairs in sorted order, so the task streams: it accumulates
// a subject's relevant pairs (skipping adjacent duplicates, which is a full
// dedup under the sorted layout) and materializes the star's cross product
// when the subject run ends — exactly what starJoinReducer does after a
// shuffle, without the shuffle.
type starJoinTask struct {
	q  *query.Query
	st *query.Star
	w  wire

	started  bool
	subject  rdf.ID
	pairs    []core.PO
	haveLast bool
	last     core.PO
}

func (m *starJoinTask) MapRecord(_ string, record []byte, out mapreduce.Collector) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	if m.started && t.S != m.subject {
		if err := m.flushSubject(out); err != nil {
			return err
		}
	}
	if !m.started || t.S != m.subject {
		m.started, m.subject = true, t.S
		m.pairs, m.haveLast = m.pairs[:0], false
	}
	if !m.st.Subj.Match(t.S) || !m.st.TripleMatchesStar(t) {
		return nil
	}
	p := core.PO{P: t.P, O: t.O}
	if m.haveLast && p == m.last {
		return nil
	}
	m.haveLast, m.last = true, p
	m.pairs = append(m.pairs, p)
	return nil
}

func (m *starJoinTask) Flush(out mapreduce.Collector) error {
	if !m.started {
		return nil
	}
	return m.flushSubject(out)
}

func (m *starJoinTask) flushSubject(out mapreduce.Collector) error {
	if len(m.pairs) == 0 {
		return nil
	}
	cands, ok := patternCandidates(m.st, m.pairs)
	if !ok {
		return nil
	}
	return crossTuples(m.st, m.subject, cands, func(t Tuple) error {
		rec, err := m.w.encodeTuple(m.q, t)
		if err != nil {
			return err
		}
		return out.Collect(rec)
	})
}

// starJoinTaskFactory builds one starJoinTask per bucket; retried attempts
// get fresh streaming state.
type starJoinTaskFactory struct {
	q  *query.Query
	st *query.Star
	w  wire
}

func (f *starJoinTaskFactory) NewTask(int, [][]byte) (mapreduce.TaskMapper, error) {
	return &starJoinTask{q: f.q, st: f.st, w: f.w}, nil
}

// starJoinMapOnlyJob builds the no-shuffle star-join job over the bucket
// files of a subject-partitioned layout.
func starJoinMapOnlyJob(name string, q *query.Query, st *query.Star, w wire,
	part *plan.Partitioning, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:            name,
		Inputs:          part.Files(),
		Output:          output,
		WholeFileSplits: true,
		MapOnlyFactory:  &starJoinTaskFactory{q: q, st: st, w: w},
	}
}

// relJoinPartMiss explains why a relational join cycle cannot use the
// layout: its key is a variable binding of materialized tuples, not the
// subject hash the bucket files are laid out on.
func relJoinPartMiss(j query.Join) string {
	return fmt.Sprintf("join ?%s keys on a tuple binding, not the layout's subject hash", j.Var)
}

// PlanPartitioned builds the physical plan against a partitioned layout.
// Hive-style star-join cycles become map-only scans of the bucket files;
// the relational join cycles still shuffle (and say why). Pig-style plans
// are unchanged — the SPLIT pass re-materializes the input, discarding the
// layout before any star-join could use it.
func (r *Relational) PlanPartitioned(q *query.Query, input string, part *plan.Partitioning,
	cl *engine.Cleaner, counters *mapreduce.Counters) (*plan.Physical, error) {
	if !part.Matches(plan.PartitionKeySubject) || r.style == StylePig {
		return r.Plan(q, input, cl, counters)
	}
	if len(q.Stars) == 0 {
		return nil, fmt.Errorf("relmr: query has no stars")
	}
	if err := plan.CheckBuckets(part.Buckets); err != nil {
		return nil, err
	}
	p := &plan.Physical{Engine: r.name, Input: input, PartInput: part.Dir}

	starFiles := make([]string, len(q.Stars))
	for i, st := range q.Stars {
		starFiles[i] = cl.Track(engine.TempName(r.name, fmt.Sprintf("star%d", i)))
		name := fmt.Sprintf("%s-star%d", r.name, i)
		p.Stages = append(p.Stages, plan.Stage{{
			Kind: plan.KindStarJoin, Name: name, Star: i,
			Inputs: []string{part.Dir}, Output: starFiles[i],
			MapSide: true, Part: part,
			Job: starJoinMapOnlyJob(name, q, st, r.w, part, starFiles[i]),
		}})
	}

	first := 0
	if len(q.Joins) > 0 {
		first = q.Joins[0].Left.Star
	}
	acc := starFiles[first]
	for ji := range q.Joins {
		j := q.Joins[ji]
		out := cl.Track(engine.TempName(r.name, fmt.Sprintf("join%d", ji)))
		name := fmt.Sprintf("%s-join%d", r.name, ji)
		right := starFiles[j.Right.Star]
		node := &plan.Node{
			Kind: plan.KindRelJoin, Name: name, Star: -1,
			Inputs: []string{acc, right}, Output: out, Join: &q.Joins[ji],
			Job: joinJob(q, name, j, r.w, acc, right, out),
		}
		if ji == 0 {
			node.PartReason = relJoinPartMiss(j)
		}
		p.Stages = append(p.Stages, plan.Stage{node})
		acc = out
	}
	p.Final = acc
	return p, nil
}

// RunPartitioned runs the query against a partitioned layout; a nil or
// mismatched layout falls back to the flat plan.
func (r *Relational) RunPartitioned(mr *mapreduce.Engine, q *query.Query, input string,
	part *plan.Partitioning) (*engine.Result, error) {
	var cl engine.Cleaner
	p, err := r.PlanPartitioned(q, input, part, &cl, nil)
	if err != nil {
		cl.Clean(mr)
		return &engine.Result{Engine: r.name}, err
	}
	return execute(mr, r.name, q, r.w, p, &cl)
}
