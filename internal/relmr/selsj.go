package relmr

import (
	"bytes"
	"fmt"

	"ntga/internal/codec"
	"ntga/internal/core"
	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
)

// SelSJFirst is the Figure 3 "Sel-SJ-first" baseline: it evaluates the most
// selective join first while preserving star structure where possible, at
// the cost of re-scanning the triple relation in later cycles:
//
//   - object-subject 2-star queries run in 2 cycles (star-join of the
//     object-side star, then a combined star-join+join cycle for the
//     subject-side star), both scanning the triple relation;
//   - object-object 2-star queries run in 3 cycles (the selective O-O edge
//     join first, then one completion cycle per star), all three scanning
//     the triple relation.
//
// It supports exactly the case study's shape: two bound-only stars joined
// on one variable.
type SelSJFirst struct {
	w    wire
	name string
}

// NewSelSJFirst returns the Sel-SJ-first engine (binary wire format).
func NewSelSJFirst() *SelSJFirst { return &SelSJFirst{name: "Sel-SJ-first"} }

// Name implements engine.QueryEngine.
func (s *SelSJFirst) Name() string { return s.name }

// Plan implements engine.QueryEngine; see the type comment for the shapes
// produced. The counters argument is unused.
func (s *SelSJFirst) Plan(q *query.Query, input string, cl *engine.Cleaner,
	_ *mapreduce.Counters) (*plan.Physical, error) {
	if len(q.Stars) != 2 || len(q.Joins) != 1 {
		return nil, fmt.Errorf("relmr: Sel-SJ-first supports exactly two stars, got %d stars / %d joins",
			len(q.Stars), len(q.Joins))
	}
	for _, st := range q.Stars {
		if st.HasUnbound() {
			return nil, fmt.Errorf("relmr: Sel-SJ-first supports bound-only stars (Figure 3 case study)")
		}
	}
	j := q.Joins[0]
	switch {
	case j.Left.Role == query.RoleBoundObj && j.Right.Role == query.RoleSubject:
		return s.planOS(q, j, input, cl)
	case j.Left.Role == query.RoleSubject && j.Right.Role == query.RoleBoundObj:
		// Normalize: object side drives cycle 1.
		j.Left, j.Right = j.Right, j.Left
		return s.planOS(q, j, input, cl)
	case j.Left.Role == query.RoleBoundObj && j.Right.Role == query.RoleBoundObj:
		return s.planOO(q, j, input, cl)
	default:
		return nil, fmt.Errorf("relmr: Sel-SJ-first cannot plan join %v", j)
	}
}

// planOS: cycle 1 star-joins the object-side star; cycle 2 scans the triple
// relation again and computes the subject-side star AND the inter-star join
// in one grouping (both keyed on the subject-side star's subject).
func (s *SelSJFirst) planOS(q *query.Query, j query.Join, input string, cl *engine.Cleaner) (*plan.Physical, error) {
	objStar := q.Stars[j.Left.Star]
	subjStar := q.Stars[j.Right.Star]
	f1 := cl.Track(engine.TempName("selsj", "star"))
	out := cl.Track(engine.TempName("selsj", "final"))
	jc := j
	return &plan.Physical{
		Engine: s.name, Input: input, Final: out,
		Stages: []plan.Stage{
			{{Kind: plan.KindStarJoin, Name: "selsj-star", Star: objStar.Index,
				Inputs: []string{input}, Output: f1,
				Job: starJoinJob("selsj-star", q, objStar, s.w, input, f1)}},
			{{Kind: plan.KindCompletion, Name: "selsj-complete", Star: subjStar.Index,
				Inputs: []string{input, f1}, Output: out, Join: &jc,
				Job: completionJob(q, "selsj-complete", subjStar, s.w, input, f1, j.Left, out)}},
		},
	}, nil
}

// planOO: cycle 1 joins the two edge patterns carrying the join variable
// (the most selective join); cycles 2 and 3 fold in the remaining patterns
// of each star, re-scanning the triple relation each time.
func (s *SelSJFirst) planOO(q *query.Query, j query.Join, input string, cl *engine.Cleaner) (*plan.Physical, error) {
	a, b := q.Stars[j.Left.Star], q.Stars[j.Right.Star]
	f1 := cl.Track(engine.TempName("selsj", "edge"))
	f2 := cl.Track(engine.TempName("selsj", "compA"))
	out := cl.Track(engine.TempName("selsj", "final"))
	jc := j
	return &plan.Physical{
		Engine: s.name, Input: input, Final: out,
		Stages: []plan.Stage{
			{{Kind: plan.KindEdgeJoin, Name: "selsj-edge", Star: -1,
				Inputs: []string{input}, Output: f1, Join: &jc,
				Job: edgeJoinJob(q, "selsj-edge", j, s.w, input, f1)}},
			{{Kind: plan.KindCompletion, Name: "selsj-completeA", Star: a.Index,
				Inputs: []string{input, f1}, Output: f2,
				Job: completionJob(q, "selsj-completeA", a, s.w, input, f1, query.Pos{}, f2)}},
			{{Kind: plan.KindCompletion, Name: "selsj-completeB", Star: b.Index,
				Inputs: []string{input, f2}, Output: out,
				Job: completionJob(q, "selsj-completeB", b, s.w, input, f2, query.Pos{}, out)}},
		},
	}, nil
}

// Run implements engine.QueryEngine.
func (s *SelSJFirst) Run(mr *mapreduce.Engine, q *query.Query, input string) (*engine.Result, error) {
	var cl engine.Cleaner
	p, err := s.Plan(q, input, &cl, nil)
	if err != nil {
		cl.Clean(mr)
		return &engine.Result{Engine: s.Name()}, err
	}
	return execute(mr, s.Name(), q, s.w, p, &cl)
}

// RunDeltas implements engine.DeltaRunner: the same plan shapes with the
// ingest delta chain overlaid on every scan of the triple relation (the
// completion mapper treats every non-tuple input as the relation, so delta
// blocks route through the star filter like base records).
func (s *SelSJFirst) RunDeltas(mr *mapreduce.Engine, q *query.Query, input string,
	deltas []string) (*engine.Result, error) {
	var cl engine.Cleaner
	p, err := s.Plan(q, input, &cl, nil)
	if err != nil {
		cl.Clean(mr)
		return &engine.Result{Engine: s.Name()}, err
	}
	p.ApplyDeltaOverlay(deltas)
	return execute(mr, s.Name(), q, s.w, p, &cl)
}

// ---- edge join (cycle 1 of the O-O plan) ----

type edgeJoinMapper struct {
	q    *query.Query
	join query.Join
	w    wire
}

func (m *edgeJoinMapper) Map(_ string, record []byte, out mapreduce.Emitter) error {
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	emitSide := func(tag byte, pos query.Pos) error {
		st := m.q.Stars[pos.Star]
		b := st.Bound[pos.Idx]
		if t.P != b.Prop || !b.Obj.Match(t.O) || !st.Subj.Match(t.S) {
			return nil
		}
		seg := Segment{Star: st.Index, Subject: t.S,
			PatIdxs: []int{pos.Idx}, Pairs: []core.PO{{P: t.P, O: t.O}}}
		rec, err := m.w.encodeTuple(m.q, Tuple{seg})
		if err != nil {
			return err
		}
		val := append([]byte{tag}, rec...)
		return out.Emit(codec.EncodeID(t.O), val)
	}
	if err := emitSide(tagLeft, m.join.Left); err != nil {
		return err
	}
	return emitSide(tagRight, m.join.Right)
}

func edgeJoinJob(q *query.Query, name string, j query.Join, w wire, input, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:          name,
		Inputs:        []string{input},
		Output:        output,
		Mapper:        &edgeJoinMapper{q: q, join: j, w: w},
		StreamReducer: joinReducer{q: q, w: w},
	}
}

// ---- star completion (cycles 2+ of both plans) ----

const (
	tagPair  byte = 0
	tagTuple byte = 1
)

// completionMapper routes triple-relation records (star-relevant pairs,
// keyed by subject) and partial tuples (keyed by the subject their
// st-segment must have) into one grouping.
type completionMapper struct {
	q         *query.Query
	st        *query.Star
	w         wire
	tupleIn   string
	absentPos query.Pos // key position when the tuple has no st-segment yet
}

func (m *completionMapper) Map(input string, record []byte, out mapreduce.Emitter) error {
	if input == m.tupleIn {
		t, err := m.w.decodeTuple(m.q, record)
		if err != nil {
			return err
		}
		key, err := m.tupleKey(t)
		if err != nil {
			return err
		}
		val := append([]byte{tagTuple}, record...)
		return out.Emit(codec.EncodeID(key), val)
	}
	// Any other input is the triple relation: the base file, or one of the
	// delta blocks the ingest overlay widened the scan with — deltas use the
	// same record codec, so they route through the identical star filter.
	t, err := codec.DecodeTriple(record)
	if err != nil {
		return err
	}
	if !m.st.Subj.Match(t.S) || !m.st.TripleMatchesStar(t) {
		return nil
	}
	pv, err := m.w.encodePair(m.q, core.PO{P: t.P, O: t.O})
	if err != nil {
		return err
	}
	val := append([]byte{tagPair}, pv...)
	return out.Emit(codec.EncodeID(t.S), val)
}

func (m *completionMapper) tupleKey(t Tuple) (rdf.ID, error) {
	for _, seg := range t {
		if seg.Star == m.st.Index {
			return seg.Subject, nil
		}
	}
	return t.joinValue(m.q, m.absentPos)
}

// completionReducer extends each tuple's st-segment (or creates it) with
// the cross product of candidates for the star's missing patterns.
type completionReducer struct {
	q  *query.Query
	st *query.Star
	w  wire
}

// Reduce streams the group: the sorted value order delivers every pair
// (tag 0) before the first tuple (tag 1), so the pairs are accumulated and
// de-duplicated incrementally, the candidate sets are fixed when the first
// tuple arrives, and each tuple is then extended and emitted without ever
// buffering the tuple side.
func (r *completionReducer) Reduce(key []byte, values mapreduce.ValueIter, out mapreduce.Collector) error {
	subject, err := codec.DecodeID(key)
	if err != nil {
		return err
	}
	if !r.st.Subj.Match(subject) {
		return nil
	}
	var pairs []core.PO
	var prevPair []byte
	var allCands [][]core.PO
	candsReady := false
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if len(v) == 0 {
			return fmt.Errorf("relmr: empty completion value")
		}
		switch v[0] {
		case tagPair:
			pv := v[1:]
			if prevPair != nil && bytes.Equal(pv, prevPair) {
				continue
			}
			prevPair = pv
			p, err := r.w.decodePair(r.q, pv)
			if err != nil {
				return err
			}
			pairs = append(pairs, p)
		case tagTuple:
			if !candsReady {
				var ok bool
				allCands, ok = patternCandidates(r.st, pairs)
				if !ok {
					return nil
				}
				candsReady = true
			}
			t, err := r.w.decodeTuple(r.q, v[1:])
			if err != nil {
				return err
			}
			if err := r.completeTuple(subject, t, allCands, out); err != nil {
				return err
			}
		default:
			return fmt.Errorf("relmr: unknown completion tag %d", v[0])
		}
	}
}

// completeTuple extends one partial tuple's st-segment (or creates it) with
// the cross product of candidates for the star's missing patterns.
func (r *completionReducer) completeTuple(subject rdf.ID, t Tuple, allCands [][]core.PO,
	out mapreduce.Collector) error {
	segIdx := -1
	for i, seg := range t {
		if seg.Star == r.st.Index {
			segIdx = i
		}
	}
	present := make(map[int]core.PO)
	if segIdx >= 0 {
		for i, pi := range t[segIdx].PatIdxs {
			present[pi] = t[segIdx].Pairs[i]
		}
	}
	// Cross product over the star's patterns: present patterns keep
	// their pinned pair, missing ones branch over candidates.
	cands := make([][]core.PO, patternCount(r.st))
	for pi := range cands {
		if pair, ok := present[pi]; ok {
			cands[pi] = []core.PO{pair}
		} else {
			cands[pi] = allCands[pi]
		}
	}
	return crossTuples(r.st, subject, cands, func(full Tuple) error {
		joined := make(Tuple, 0, len(t)+1)
		for i, seg := range t {
			if i == segIdx {
				continue
			}
			joined = append(joined, seg)
		}
		joined = append(joined, full[0])
		rec, err := r.w.encodeTuple(r.q, joined)
		if err != nil {
			return err
		}
		return out.Collect(rec)
	})
}

// completionJob builds a combined star-join + join cycle: it scans the
// triple relation for the star's patterns and folds the partial tuples in.
func completionJob(q *query.Query, name string, st *query.Star, w wire, tripleIn, tupleIn string,
	absentPos query.Pos, output string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:   name,
		Inputs: []string{tripleIn, tupleIn},
		Output: output,
		Mapper: &completionMapper{q: q, st: st, w: w, tupleIn: tupleIn,
			absentPos: absentPos},
		StreamReducer: &completionReducer{q: q, st: st, w: w},
	}
}
