package relmr

import (
	"testing"

	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/plan"
	"ntga/internal/query"
)

// TestHivePartitionedParity runs every catalog query on the flat and the
// partitioned Hive plan (binary and text wire) and requires identical row
// multisets — with every star-join cycle map-only and shuffle-free.
func TestHivePartitionedParity(t *testing.T) {
	g := enginetest.BioGraph()
	for _, eng := range []*Relational{NewHive(), NewHiveText()} {
		for _, tq := range testQueries {
			t.Run(eng.Name()+"/"+tq.name, func(t *testing.T) {
				mr := enginetest.NewMR()
				const input = "data/triples"
				if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
					t.Fatal(err)
				}
				part, err := plan.BuildPartitionLayout(mr, input, "part/T", 4, g.Version())
				if err != nil {
					t.Fatal(err)
				}
				flat, err := eng.Run(mr, enginetest.Compile(t, g, tq.src), input)
				if err != nil {
					t.Fatalf("flat run: %v", err)
				}
				q := enginetest.Compile(t, g, tq.src)
				pr, err := eng.RunPartitioned(mr, q, input, part)
				if err != nil {
					t.Fatalf("partitioned run: %v", err)
				}
				if flat.Count != pr.Count {
					t.Errorf("count mismatch: flat %d, partitioned %d", flat.Count, pr.Count)
				}
				if !query.RowsEqual(flat.Rows, pr.Rows) {
					t.Errorf("rows differ:\n%s", query.DiffRows(flat.Rows, pr.Rows, 5))
				}
				// One map-only star-join per star, all shuffle-free.
				for i := range q.Stars {
					jm := pr.Workflow.Jobs[i]
					if !jm.MapOnly {
						t.Errorf("star cycle %d (%s) not map-only", i, jm.Job)
					}
					if jm.MapOutputBytes != 0 {
						t.Errorf("star cycle %d (%s) shuffled %d bytes", i, jm.Job, jm.MapOutputBytes)
					}
				}
			})
		}
	}
}

// TestHivePlanPartitionedShape pins the rewritten plan: map-side star joins
// over the layout directory, and a part-miss reason on the first relational
// join (its key is a binding, not the subject hash).
func TestHivePlanPartitionedShape(t *testing.T) {
	g := enginetest.BioGraph()
	part, err := plan.NewPartitioning(plan.PartitionKeySubject, 4, "part/T", "v")
	if err != nil {
		t.Fatal(err)
	}
	q := enginetest.Compile(t, g, testQueries[2].src) // two stars OS join
	var cl engine.Cleaner
	p, err := NewHive().PlanPartitioned(q, "in", part, &cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("plan has %d nodes, want 3", len(nodes))
	}
	for _, node := range nodes[:2] {
		if !node.MapSide || node.Part == nil {
			t.Errorf("star node %s not rewritten map-side", node.Name)
		}
		if node.Inputs[0] != part.Dir {
			t.Errorf("star node %s reads %q, want layout dir", node.Name, node.Inputs[0])
		}
	}
	if nodes[2].MapSide {
		t.Error("relational join marked map-side")
	}
	if nodes[2].PartReason == "" {
		t.Error("relational join lacks a part-miss reason")
	}

	// Pig ignores the layout entirely (the SPLIT pass discards it).
	var cl2 engine.Cleaner
	pp, err := NewPig().PlanPartitioned(q, "in", part, &cl2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range pp.Nodes() {
		if node.MapSide {
			t.Errorf("pig node %s map-side", node.Name)
		}
	}

	// Nil partitioning falls back to the flat plan.
	var cl3 engine.Cleaner
	pf, err := NewHive().PlanPartitioned(q, "in", nil, &cl3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cl4 engine.Cleaner
	flat, err := NewHive().Plan(q, "in", &cl4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Summary() != flat.Summary() {
		t.Errorf("nil-partitioned plan differs from flat:\n%s\nvs\n%s", pf.Summary(), flat.Summary())
	}
}
