package relmr

import (
	"fmt"

	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/query"
)

// Style selects between the two relational baselines' plan shapes.
type Style int

// The relational plan styles.
const (
	// StyleHive: one star-join per MR cycle, each cycle scanning the triple
	// relation once (shared scan across the star's VP relations); cycles
	// run sequentially.
	StyleHive Style = iota
	// StylePig: an initial map-only SPLIT/compress job materializes the
	// query-relevant subset of the input; star-join jobs scan that copy
	// and run concurrently (Pig submits independent MR jobs in parallel).
	StylePig
)

// Relational is the Pig-style / Hive-style one-star-join-per-cycle engine.
type Relational struct {
	style Style
	name  string
	w     wire
}

// NewPig returns the Pig-style engine (binary wire format).
func NewPig() *Relational { return &Relational{style: StylePig, name: "Pig"} }

// NewHive returns the Hive-style engine (binary wire format).
func NewHive() *Relational { return &Relational{style: StyleHive, name: "Hive"} }

// NewPigText and NewHiveText return the engines with the text wire format:
// intermediate tuples materialized as tab-separated N-Triples terms, the
// representation real Pig/Hive write between jobs. Text tuples repeat the
// full term strings in every column, so footprints (and disk-full
// behaviour) match the paper's string-based measurements more closely than
// the dictionary-ID encoding does.
func NewPigText() *Relational {
	return &Relational{style: StylePig, name: "Pig-text", w: wire{text: true}}
}

// NewHiveText is the text-wire Hive-style engine; see NewPigText.
func NewHiveText() *Relational {
	return &Relational{style: StyleHive, name: "Hive-text", w: wire{text: true}}
}

// NewSJPerCycle returns the Figure 3 "SJ-per-cycle" baseline: structurally
// the Hive plan (one star-join cycle per star, then join cycles), named
// separately for the case-study comparison.
func NewSJPerCycle() *Relational { return &Relational{style: StyleHive, name: "SJ-per-cycle"} }

// Name implements engine.QueryEngine.
func (r *Relational) Name() string { return r.name }

// Plan builds the workflow stages without executing them; the final output
// file name is returned alongside. Exposed for plan inspection
// (cmd/ntga-explain) and the Figure 3 cycle/scan accounting.
func (r *Relational) Plan(q *query.Query, input string, cl *engine.Cleaner) ([]mapreduce.Stage, string, error) {
	if len(q.Stars) == 0 {
		return nil, "", fmt.Errorf("relmr: query has no stars")
	}
	var stages []mapreduce.Stage

	scanInput := input
	if r.style == StylePig {
		vp := cl.Track(engine.TempName(r.name, "split"))
		stages = append(stages, mapreduce.Stage{splitJob(q, input, vp)})
		scanInput = vp
	}

	starFiles := make([]string, len(q.Stars))
	var starStage mapreduce.Stage
	for i, st := range q.Stars {
		starFiles[i] = cl.Track(engine.TempName(r.name, fmt.Sprintf("star%d", i)))
		job := starJoinJob(fmt.Sprintf("%s-star%d", r.name, i), q, st, r.w, scanInput, starFiles[i])
		if r.style == StylePig {
			starStage = append(starStage, job)
		} else {
			stages = append(stages, mapreduce.Stage{job})
		}
	}
	if r.style == StylePig {
		stages = append(stages, starStage)
	}

	acc := starFiles[0]
	for ji, j := range q.Joins {
		out := cl.Track(engine.TempName(r.name, fmt.Sprintf("join%d", ji)))
		stages = append(stages, mapreduce.Stage{
			joinJob(q, fmt.Sprintf("%s-join%d", r.name, ji), j, r.w, acc, starFiles[j.Right.Star], out),
		})
		acc = out
	}
	return stages, acc, nil
}

// Run implements engine.QueryEngine.
func (r *Relational) Run(mr *mapreduce.Engine, q *query.Query, input string) (*engine.Result, error) {
	var cl engine.Cleaner
	stages, final, err := r.Plan(q, input, &cl)
	if err != nil {
		return &engine.Result{Engine: r.name}, err
	}
	return execute(mr, r.name, q, r.w, stages, final, &cl)
}

// execute dispatches between row decoding and COUNT(*) aggregation (the
// relational representation is fully expanded, so the count is simply the
// final record count).
func execute(mr *mapreduce.Engine, name string, q *query.Query, w wire,
	stages []mapreduce.Stage, final string, cl *engine.Cleaner) (*engine.Result, error) {
	if q.IsCount() {
		var count int64
		res, err := engine.Execute(mr, name, stages, final, cl, nil,
			func(record []byte) ([]query.Row, error) {
				count++
				return nil, nil
			})
		res.IsCount = true
		res.Count = count
		return res, err
	}
	return engine.Execute(mr, name, stages, final, cl, nil, decodeRowsWire(q, w))
}
