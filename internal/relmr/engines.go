package relmr

import (
	"fmt"

	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/plan"
	"ntga/internal/query"
)

// Style selects between the two relational baselines' plan shapes.
type Style int

// The relational plan styles.
const (
	// StyleHive: one star-join per MR cycle, each cycle scanning the triple
	// relation once (shared scan across the star's VP relations); cycles
	// run sequentially.
	StyleHive Style = iota
	// StylePig: an initial map-only SPLIT/compress job materializes the
	// query-relevant subset of the input; star-join jobs scan that copy
	// and run concurrently (Pig submits independent MR jobs in parallel).
	StylePig
)

// Relational is the Pig-style / Hive-style one-star-join-per-cycle engine.
type Relational struct {
	style Style
	name  string
	w     wire
}

// NewPig returns the Pig-style engine (binary wire format).
func NewPig() *Relational { return &Relational{style: StylePig, name: "Pig"} }

// NewHive returns the Hive-style engine (binary wire format).
func NewHive() *Relational { return &Relational{style: StyleHive, name: "Hive"} }

// NewPigText and NewHiveText return the engines with the text wire format:
// intermediate tuples materialized as tab-separated N-Triples terms, the
// representation real Pig/Hive write between jobs. Text tuples repeat the
// full term strings in every column, so footprints (and disk-full
// behaviour) match the paper's string-based measurements more closely than
// the dictionary-ID encoding does.
func NewPigText() *Relational {
	return &Relational{style: StylePig, name: "Pig-text", w: wire{text: true}}
}

// NewHiveText is the text-wire Hive-style engine; see NewPigText.
func NewHiveText() *Relational {
	return &Relational{style: StyleHive, name: "Hive-text", w: wire{text: true}}
}

// NewSJPerCycle returns the Figure 3 "SJ-per-cycle" baseline: structurally
// the Hive plan (one star-join cycle per star, then join cycles), named
// separately for the case-study comparison.
func NewSJPerCycle() *Relational { return &Relational{style: StyleHive, name: "SJ-per-cycle"} }

// Name implements engine.QueryEngine.
func (r *Relational) Name() string { return r.name }

// Plan implements engine.QueryEngine: it builds the physical plan without
// executing anything. Exposed for plan inspection (cmd/ntga-explain) and
// the Figure 3 cycle/scan accounting. The counters argument is unused —
// the relational engines keep no run counters.
func (r *Relational) Plan(q *query.Query, input string, cl *engine.Cleaner,
	_ *mapreduce.Counters) (*plan.Physical, error) {
	if len(q.Stars) == 0 {
		return nil, fmt.Errorf("relmr: query has no stars")
	}
	p := &plan.Physical{Engine: r.name, Input: input}

	scanInput := input
	if r.style == StylePig {
		vp := cl.Track(engine.TempName(r.name, "split"))
		job := splitJob(q, input, vp)
		p.Stages = append(p.Stages, plan.Stage{{
			Kind: plan.KindSplit, Name: job.Name, Star: -1,
			Inputs: []string{input}, Output: vp,
			DoubleCopy: splitDoubleCopies(q), Job: job,
		}})
		scanInput = vp
	}

	starFiles := make([]string, len(q.Stars))
	var starStage plan.Stage
	for i, st := range q.Stars {
		starFiles[i] = cl.Track(engine.TempName(r.name, fmt.Sprintf("star%d", i)))
		name := fmt.Sprintf("%s-star%d", r.name, i)
		node := &plan.Node{
			Kind: plan.KindStarJoin, Name: name, Star: i,
			Inputs: []string{scanInput}, Output: starFiles[i],
			Job: starJoinJob(name, q, st, r.w, scanInput, starFiles[i]),
		}
		if r.style == StylePig {
			starStage = append(starStage, node)
		} else {
			p.Stages = append(p.Stages, plan.Stage{node})
		}
	}
	if r.style == StylePig {
		p.Stages = append(p.Stages, starStage)
	}

	first := 0
	if len(q.Joins) > 0 {
		first = q.Joins[0].Left.Star
	}
	acc := starFiles[first]
	for ji := range q.Joins {
		j := q.Joins[ji]
		out := cl.Track(engine.TempName(r.name, fmt.Sprintf("join%d", ji)))
		name := fmt.Sprintf("%s-join%d", r.name, ji)
		right := starFiles[j.Right.Star]
		p.Stages = append(p.Stages, plan.Stage{{
			Kind: plan.KindRelJoin, Name: name, Star: -1,
			Inputs: []string{acc, right}, Output: out, Join: &q.Joins[ji],
			Job: joinJob(q, name, j, r.w, acc, right, out),
		}})
		acc = out
	}
	p.Final = acc
	return p, nil
}

// splitDoubleCopies reports whether the SPLIT job materializes the relation
// twice (the Pig unbound-query pattern the paper calls out: one copy for
// the bound patterns, one for the unbound slots).
func splitDoubleCopies(q *query.Query) bool {
	for _, st := range q.Stars {
		if st.HasUnbound() {
			return true
		}
	}
	return false
}

// Run implements engine.QueryEngine.
func (r *Relational) Run(mr *mapreduce.Engine, q *query.Query, input string) (*engine.Result, error) {
	var cl engine.Cleaner
	p, err := r.Plan(q, input, &cl, nil)
	if err != nil {
		cl.Clean(mr)
		return &engine.Result{Engine: r.name}, err
	}
	return execute(mr, r.name, q, r.w, p, &cl)
}

// RunDeltas implements engine.DeltaRunner: the regular plan with the
// ingest delta chain overlaid on every scan of the triple relation.
func (r *Relational) RunDeltas(mr *mapreduce.Engine, q *query.Query, input string,
	deltas []string) (*engine.Result, error) {
	var cl engine.Cleaner
	p, err := r.Plan(q, input, &cl, nil)
	if err != nil {
		cl.Clean(mr)
		return &engine.Result{Engine: r.name}, err
	}
	p.ApplyDeltaOverlay(deltas)
	return execute(mr, r.name, q, r.w, p, &cl)
}

// execute dispatches between row decoding and COUNT(*) aggregation (the
// relational representation is fully expanded, so the count is simply the
// final record count).
func execute(mr *mapreduce.Engine, name string, q *query.Query, w wire,
	p *plan.Physical, cl *engine.Cleaner) (*engine.Result, error) {
	if q.IsCount() {
		var count int64
		res, err := engine.ExecutePlan(mr, name, p, cl, nil,
			func(record []byte) ([]query.Row, error) {
				count++
				return nil, nil
			})
		res.IsCount = true
		res.Count = count
		return res, err
	}
	return engine.ExecutePlan(mr, name, p, cl, nil, decodeRowsWire(q, w))
}
