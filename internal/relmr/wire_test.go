package relmr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ntga/internal/core"
	"ntga/internal/engine"
	"ntga/internal/enginetest"
	"ntga/internal/rdf"
)

func TestTextWireEnginesMatchReference(t *testing.T) {
	g := enginetest.BioGraph()
	for _, eng := range []engine.QueryEngine{NewPigText(), NewHiveText()} {
		for _, tc := range testQueries {
			t.Run(eng.Name()+"/"+tc.name, func(t *testing.T) {
				enginetest.RunAndCompare(t, eng, g, tc.src)
			})
		}
	}
}

func TestTextTupleRoundtripQuick(t *testing.T) {
	// Random tuples over terms with hostile lexical forms must survive the
	// text encoding.
	g := rdf.NewGraph()
	hostile := []rdf.Term{
		rdf.NewIRI("http://ex/plain"),
		rdf.NewLiteral("tab\there"),
		rdf.NewLiteral("newline\nhere"),
		rdf.NewLiteral(`quote " and \ backslash`),
		rdf.NewLangLiteral("héllo wörld", "de"),
		rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		rdf.NewBlank("b0"),
		rdf.NewLiteral(""),
	}
	for i, tm := range hostile {
		g.Add(rdf.NewIRI(fmt.Sprintf("http://s/%d", i)), rdf.NewIRI("http://ex/p0"), tm)
	}
	q := enginetest.Compile(t, g, `SELECT * WHERE { ?s <http://ex/p0> ?o . }`)
	nTerms := rdf.ID(g.Dict.Len())
	w := wire{text: true}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSegs := 1 + rng.Intn(3)
		tp := make(Tuple, nSegs)
		for s := range tp {
			nPats := 1 + rng.Intn(3)
			seg := Segment{
				Star:    rng.Intn(3),
				Subject: 1 + rdf.ID(rng.Intn(int(nTerms))),
				PatIdxs: make([]int, nPats),
				Pairs:   make([]core.PO, nPats),
			}
			for i := 0; i < nPats; i++ {
				seg.PatIdxs[i] = rng.Intn(5)
				seg.Pairs[i] = core.PO{
					P: 1 + rdf.ID(rng.Intn(int(nTerms))),
					O: 1 + rdf.ID(rng.Intn(int(nTerms))),
				}
			}
			tp[s] = seg
		}
		enc, err := w.encodeTuple(q, tp)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := w.decodeTuple(q, enc)
		if err != nil {
			t.Logf("decode of %q: %v", enc, err)
			return false
		}
		if len(got) != len(tp) {
			return false
		}
		for s := range tp {
			if got[s].Star != tp[s].Star || got[s].Subject != tp[s].Subject {
				return false
			}
			for i := range tp[s].Pairs {
				if got[s].PatIdxs[i] != tp[s].PatIdxs[i] || got[s].Pairs[i] != tp[s].Pairs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTextPairRoundtrip(t *testing.T) {
	g := enginetest.BioGraph()
	q := enginetest.Compile(t, g, `SELECT * WHERE { ?s ?p ?o . }`)
	w := wire{text: true}
	for _, tr := range g.Triples[:20] {
		p := core.PO{P: tr.P, O: tr.O}
		enc, err := w.encodePair(q, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.decodePair(q, enc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if got != p {
			t.Errorf("roundtrip %v -> %v", p, got)
		}
	}
}

func TestTextDecodeErrors(t *testing.T) {
	g := enginetest.BioGraph()
	q := enginetest.Compile(t, g, `SELECT * WHERE { ?s ?p ?o . }`)
	w := wire{text: true}
	for _, bad := range []string{
		"", "x", "1\t0", "1\t0\t<http://ex/label>\tnotanint",
		"1\t0\t<http://nosuchterm>\t0",
		"0\textra",
	} {
		if _, err := w.decodeTuple(q, []byte(bad)); err == nil {
			t.Errorf("decodeTuple(%q) succeeded", bad)
		}
	}
	if _, err := w.decodePair(q, []byte("onlyonefield")); err == nil {
		t.Error("decodePair with one field succeeded")
	}
	if _, err := w.decodePair(q, []byte("<http://a>\t<http://b>\t<http://c>")); err == nil {
		t.Error("decodePair with three fields succeeded")
	}
}

// TestTextWireInflatesFootprint verifies the fidelity property the text
// mode exists for: the same query writes substantially more bytes under
// the text wire (full term strings per column) than under dictionary IDs.
func TestTextWireInflatesFootprint(t *testing.T) {
	g := enginetest.BioGraph()
	src := `
PREFIX ex: <http://ex/>
SELECT * WHERE { ?g ex:label ?l . ?g ex:xGO ?go . ?g ?p ?o . }`
	binary := enginetest.RunAndCompare(t, NewHive(), g, src)
	text := enginetest.RunAndCompare(t, NewHiveText(), g, src)
	if len(text.Rows) != len(binary.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(text.Rows), len(binary.Rows))
	}
	bw := binary.Workflow.TotalReduceOutputBytes()
	tw := text.Workflow.TotalReduceOutputBytes()
	if tw < 4*bw {
		t.Errorf("text writes (%d) not ≥4x binary writes (%d)", tw, bw)
	}
}

func TestWireString(t *testing.T) {
	if BinaryWire.String() != "binary" || TextWire.String() != "text" {
		t.Error("Wire.String mismatch")
	}
}
