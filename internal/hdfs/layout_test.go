package hdfs

import (
	"errors"
	"testing"
)

func TestLayoutRoundTrip(t *testing.T) {
	d := New(Config{Nodes: 2})
	l := Layout{Key: "subject", Buckets: 4, Version: "00000000deadbeef", Dir: "part/T"}
	if err := d.WriteLayout(l); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadLayout("part/T")
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatalf("round trip: got %+v want %+v", got, l)
	}
	if f := got.BucketFile(3); f != "part/T/bucket-00003" {
		t.Fatalf("BucketFile(3) = %q", f)
	}
	if files := got.Files(); len(files) != 4 || files[0] != "part/T/bucket-00000" {
		t.Fatalf("Files() = %v", files)
	}
	// Rewriting the manifest (a reload) replaces the old one.
	l2 := l
	l2.Version = "1111111111111111"
	if err := d.WriteLayout(l2); err != nil {
		t.Fatal(err)
	}
	got, err = d.ReadLayout("part/T")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != l2.Version {
		t.Fatalf("rewrite kept stale version %s", got.Version)
	}
}

func TestLayoutValidate(t *testing.T) {
	l := Layout{Key: "subject", Buckets: 2, Version: "aa", Dir: "part/T"}
	if err := l.Validate("aa"); err != nil {
		t.Fatalf("matching version rejected: %v", err)
	}
	err := l.Validate("bb")
	if !errors.Is(err, ErrLayoutStale) {
		t.Fatalf("stale version: got %v, want ErrLayoutStale", err)
	}
}

func TestLayoutErrors(t *testing.T) {
	d := New(Config{Nodes: 2})
	if _, err := d.ReadLayout("never/loaded"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing manifest: got %v, want ErrNotFound", err)
	}
	if err := d.WriteLayout(Layout{Dir: "part/T"}); err == nil {
		t.Fatal("WriteLayout accepted zero buckets")
	}
	if err := d.WriteLayout(Layout{Buckets: 2}); err == nil {
		t.Fatal("WriteLayout accepted empty dir")
	}
	// A manifest naming a different dir (copied or renamed by hand) is
	// rejected rather than trusted.
	l := Layout{Key: "subject", Buckets: 2, Version: "aa", Dir: "part/T"}
	if err := d.WriteLayout(l); err != nil {
		t.Fatal(err)
	}
	recs, err := d.ReadAll("part/T/" + LayoutManifestName)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("part/U/"+LayoutManifestName, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadLayout("part/U"); err == nil {
		t.Fatal("ReadLayout trusted a manifest naming a different dir")
	}
}
