package hdfs

import (
	"fmt"
	"io"
)

// Writer appends records to a file being created. It buffers records into
// blocks and places each full block on the cluster as it fills, so a write
// that exhausts cluster capacity fails while the file is being produced —
// mirroring a Hadoop job failing mid-reduce, not at commit time.
type Writer struct {
	d        *DFS
	name     string
	f        *file
	pending  int64 // bytes appended since the last placed block
	wRecords int64 // records appended through this writer
	wBytes   int64 // logical bytes appended through this writer
	closed   bool
	failed   bool
}

// Create begins writing a new file. The file becomes visible immediately;
// concurrent readers of a file under construction are not supported (the MR
// engine never does this).
func (d *DFS) Create(name string) (*Writer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	f := &file{}
	d.files[name] = f
	d.metrics.FilesCreated++
	return &Writer{d: d, name: name, f: f}, nil
}

// Append adds one record. It returns ErrDiskFull (wrapped) if the cluster
// cannot hold the data; after a failure the writer is unusable and the file
// should be Abort()ed.
func (w *Writer) Append(record []byte) error {
	if w.closed {
		return fmt.Errorf("hdfs: append to closed writer for %s", w.name)
	}
	if w.failed {
		return fmt.Errorf("%w: writer for %s already failed", ErrDiskFull, w.name)
	}
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	// Store our own copy: callers reuse record buffers.
	cp := make([]byte, len(record))
	copy(cp, record)
	w.f.records = append(w.f.records, cp)
	w.f.size += int64(len(cp))
	w.pending += int64(len(cp))
	w.wRecords++
	w.wBytes += int64(len(cp))
	w.d.metrics.BytesWritten += int64(len(cp))
	w.d.metrics.PhysicalBytesWritten += int64(len(cp)) * int64(w.d.cfg.Replication)
	w.d.metrics.RecordsWritten++
	for w.pending >= w.d.cfg.BlockSize {
		if err := w.placeLocked(w.d.cfg.BlockSize); err != nil {
			w.failed = true
			return err
		}
	}
	return nil
}

// placeLocked places a block of the given size. Caller holds d.mu.
func (w *Writer) placeLocked(size int64) error {
	nodes, err := w.d.placeBlock(size)
	if err != nil {
		return err
	}
	w.f.blocks = append(w.f.blocks, block{size: size, nodes: nodes})
	w.pending -= size
	return nil
}

// Close flushes the final partial block. The file remains if Close fails;
// callers should Abort on error.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.failed {
		return fmt.Errorf("%w: writer for %s failed before close", ErrDiskFull, w.name)
	}
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if w.pending > 0 {
		if err := w.placeLocked(w.pending); err != nil {
			w.failed = true
			return err
		}
	}
	return nil
}

// Written reports the records and logical bytes appended through this
// writer so far. The MR engine uses it to attribute DFS-write spans to the
// task that streamed the bytes (per part file, including failed attempts'
// partial output before an Abort).
func (w *Writer) Written() (records, bytes int64) {
	return w.wRecords, w.wBytes
}

// Abort discards the partially-written file and frees its blocks.
func (w *Writer) Abort() {
	w.closed = true
	w.d.DeleteIfExists(w.name)
}

// ReadAll returns every record of a file, charging the file's logical size
// to the read counters. The returned slices alias DFS-owned storage and
// must not be mutated.
func (d *DFS) ReadAll(name string) ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	d.metrics.BytesRead += f.size
	d.metrics.RecordsRead += int64(len(f.records))
	return f.records, nil
}

// FileReader streams a file's records one at a time, charging the read
// counters incrementally as records are consumed instead of all at once at
// open time. It is the streaming counterpart of ReadAll: a reader abandoned
// halfway charges only the bytes it actually delivered, and a re-executed
// task that re-opens its split re-charges the re-read — both faithful to
// how Hadoop accounts HDFS reads.
type FileReader struct {
	d    *DFS
	recs [][]byte // immutable snapshot of the file's records
	i    int
	end  int
}

// Open begins a streaming read of the whole file.
func (d *DFS) Open(name string) (*FileReader, error) {
	return d.OpenRange(name, 0, -1)
}

// OpenRange begins a streaming read of n records starting at record off
// (n < 0 means "through the end of the file"). The range is clamped to the
// file's current record count. MR map tasks use ranges so that several
// splits of one file each charge exactly the bytes they scan.
func (d *DFS) OpenRange(name string, off, n int) (*FileReader, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 {
		off = 0
	}
	if off > len(f.records) {
		off = len(f.records)
	}
	end := len(f.records)
	if n >= 0 && off+n < end {
		end = off + n
	}
	return &FileReader{d: d, recs: f.records, i: off, end: end}, nil
}

// Next returns the next record, or io.EOF when the range is exhausted. The
// returned slice aliases DFS-owned storage and must not be mutated.
func (r *FileReader) Next() ([]byte, error) {
	if r.i >= r.end {
		return nil, io.EOF
	}
	rec := r.recs[r.i]
	r.i++
	r.d.mu.Lock()
	r.d.metrics.BytesRead += int64(len(rec))
	r.d.metrics.RecordsRead++
	r.d.mu.Unlock()
	return rec, nil
}

// Remaining reports how many records of the range are left to read.
func (r *FileReader) Remaining() int { return r.end - r.i }

// ReadRange returns n records of a file starting at record off (n < 0 means
// "through the end"), charging exactly the delivered bytes to the read
// counters. It is the bulk remote-read surface the distributed coordinator
// serves map-task splits over: a worker's split scan becomes one call here
// instead of a streaming FileReader, with identical read accounting. The
// returned slices alias DFS-owned storage and must not be mutated.
func (d *DFS) ReadRange(name string, off, n int) ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 {
		off = 0
	}
	if off > len(f.records) {
		off = len(f.records)
	}
	end := len(f.records)
	if n >= 0 && off+n < end {
		end = off + n
	}
	recs := f.records[off:end]
	for _, rec := range recs {
		d.metrics.BytesRead += int64(len(rec))
	}
	d.metrics.RecordsRead += int64(len(recs))
	return recs, nil
}

// Concat assembles dst from the given source files in order, transferring
// their records and already-placed blocks without charging any new write
// bytes — modelling HDFS concat, which splices block lists in the NameNode.
// The sources are removed. dst must not already exist. The MR engine uses
// this to commit per-reduce-task part files into the job's output file
// after every task has streamed (and paid for) its own writes.
func (d *DFS) Concat(dst string, srcs []string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[dst]; ok {
		return fmt.Errorf("%w: %s", ErrExists, dst)
	}
	parts := make([]*file, len(srcs))
	for i, s := range srcs {
		f, ok := d.files[s]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, s)
		}
		parts[i] = f
	}
	out := &file{}
	for _, f := range parts {
		out.records = append(out.records, f.records...)
		out.blocks = append(out.blocks, f.blocks...)
		out.size += f.size
	}
	for _, s := range srcs {
		delete(d.files, s)
	}
	d.files[dst] = out
	d.metrics.FilesCreated++
	d.metrics.FilesDeleted += int64(len(srcs))
	return nil
}

// WriteFile creates a file from a complete record slice, closing it on
// success and aborting on failure.
func (d *DFS) WriteFile(name string, records [][]byte) error {
	w, err := d.Create(name)
	if err != nil {
		return err
	}
	for _, rec := range records {
		if err := w.Append(rec); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return err
	}
	return nil
}
