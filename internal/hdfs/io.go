package hdfs

import (
	"fmt"
)

// Writer appends records to a file being created. It buffers records into
// blocks and places each full block on the cluster as it fills, so a write
// that exhausts cluster capacity fails while the file is being produced —
// mirroring a Hadoop job failing mid-reduce, not at commit time.
type Writer struct {
	d       *DFS
	name    string
	f       *file
	pending int64 // bytes appended since the last placed block
	closed  bool
	failed  bool
}

// Create begins writing a new file. The file becomes visible immediately;
// concurrent readers of a file under construction are not supported (the MR
// engine never does this).
func (d *DFS) Create(name string) (*Writer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	f := &file{}
	d.files[name] = f
	d.metrics.FilesCreated++
	return &Writer{d: d, name: name, f: f}, nil
}

// Append adds one record. It returns ErrDiskFull (wrapped) if the cluster
// cannot hold the data; after a failure the writer is unusable and the file
// should be Abort()ed.
func (w *Writer) Append(record []byte) error {
	if w.closed {
		return fmt.Errorf("hdfs: append to closed writer for %s", w.name)
	}
	if w.failed {
		return fmt.Errorf("%w: writer for %s already failed", ErrDiskFull, w.name)
	}
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	// Store our own copy: callers reuse record buffers.
	cp := make([]byte, len(record))
	copy(cp, record)
	w.f.records = append(w.f.records, cp)
	w.f.size += int64(len(cp))
	w.pending += int64(len(cp))
	w.d.metrics.BytesWritten += int64(len(cp))
	w.d.metrics.PhysicalBytesWritten += int64(len(cp)) * int64(w.d.cfg.Replication)
	w.d.metrics.RecordsWritten++
	for w.pending >= w.d.cfg.BlockSize {
		if err := w.placeLocked(w.d.cfg.BlockSize); err != nil {
			w.failed = true
			return err
		}
	}
	return nil
}

// placeLocked places a block of the given size. Caller holds d.mu.
func (w *Writer) placeLocked(size int64) error {
	nodes, err := w.d.placeBlock(size)
	if err != nil {
		return err
	}
	w.f.blocks = append(w.f.blocks, block{size: size, nodes: nodes})
	w.pending -= size
	return nil
}

// Close flushes the final partial block. The file remains if Close fails;
// callers should Abort on error.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.failed {
		return fmt.Errorf("%w: writer for %s failed before close", ErrDiskFull, w.name)
	}
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if w.pending > 0 {
		if err := w.placeLocked(w.pending); err != nil {
			w.failed = true
			return err
		}
	}
	return nil
}

// Abort discards the partially-written file and frees its blocks.
func (w *Writer) Abort() {
	w.closed = true
	w.d.DeleteIfExists(w.name)
}

// ReadAll returns every record of a file, charging the file's logical size
// to the read counters. The returned slices alias DFS-owned storage and
// must not be mutated.
func (d *DFS) ReadAll(name string) ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	d.metrics.BytesRead += f.size
	d.metrics.RecordsRead += int64(len(f.records))
	return f.records, nil
}

// WriteFile creates a file from a complete record slice, closing it on
// success and aborting on failure.
func (d *DFS) WriteFile(name string, records [][]byte) error {
	w, err := d.Create(name)
	if err != nil {
		return err
	}
	for _, rec := range records {
		if err := w.Append(rec); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return err
	}
	return nil
}
