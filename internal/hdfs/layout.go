package hdfs

import (
	"encoding/json"
	"errors"
	"fmt"
)

// This file defines the physical partitioned-relation layout: a directory of
// hash-bucketed relation files plus a persisted manifest describing how they
// were produced. The loader job (internal/plan.BuildPartitionLayout) writes
// the buckets and the manifest once; planners read the manifest back and
// compare its dataset content-hash version against the live dataset before
// trusting the buckets — a stale layout (dataset reloaded or mutated since
// the load) must demote the query to the shuffle path, never silently serve
// mismatched buckets.

// LayoutManifestName is the manifest file inside a layout directory.
const LayoutManifestName = "_layout"

// ErrLayoutStale marks a layout whose recorded dataset version no longer
// matches the live dataset.
var ErrLayoutStale = errors.New("hdfs: partition layout is stale")

// Layout describes one partitioned relation: Buckets hash-partitioned files
// under Dir, bucketed on Key, built from the dataset whose content hash is
// Version.
type Layout struct {
	// Key names the partitioning column. The only key the loader writes
	// today is "subject" (hash of the triple's subject ID).
	Key string `json:"key"`
	// Buckets is the number of bucket files.
	Buckets int `json:"buckets"`
	// Version is the dataset content hash (rdf.Graph.Version) the layout
	// was built from.
	Version string `json:"version"`
	// Dir is the DFS directory prefix holding the bucket files.
	Dir string `json:"dir"`
}

// BucketFile returns the DFS name of bucket i.
func (l Layout) BucketFile(i int) string {
	return fmt.Sprintf("%s/bucket-%05d", l.Dir, i)
}

// Files returns every bucket file name, in bucket order.
func (l Layout) Files() []string {
	out := make([]string, l.Buckets)
	for i := range out {
		out[i] = l.BucketFile(i)
	}
	return out
}

// manifestName returns the layout's manifest file name.
func (l Layout) manifestName() string { return l.Dir + "/" + LayoutManifestName }

// Validate checks the layout against the live dataset's content hash,
// returning an ErrLayoutStale-wrapped error on mismatch.
func (l Layout) Validate(datasetVersion string) error {
	if l.Version != datasetVersion {
		return fmt.Errorf("%w: layout %s built from dataset %s, live dataset is %s",
			ErrLayoutStale, l.Dir, l.Version, datasetVersion)
	}
	return nil
}

// WriteLayout persists the manifest into the layout's directory, replacing
// any previous manifest.
func (d *DFS) WriteLayout(l Layout) error {
	if l.Dir == "" {
		return fmt.Errorf("hdfs: WriteLayout: empty layout dir")
	}
	if l.Buckets <= 0 {
		return fmt.Errorf("hdfs: WriteLayout: layout %s has %d buckets", l.Dir, l.Buckets)
	}
	rec, err := json.Marshal(l)
	if err != nil {
		return err
	}
	d.DeleteIfExists(l.manifestName())
	return d.WriteFile(l.manifestName(), [][]byte{rec})
}

// ReadLayout loads the manifest persisted under dir. A missing manifest
// reports ErrNotFound (the directory was never loaded, or the load did not
// complete).
func (d *DFS) ReadLayout(dir string) (Layout, error) {
	recs, err := d.ReadAll(dir + "/" + LayoutManifestName)
	if err != nil {
		return Layout{}, fmt.Errorf("hdfs: reading layout manifest under %s: %w", dir, err)
	}
	if len(recs) != 1 {
		return Layout{}, fmt.Errorf("hdfs: layout manifest under %s has %d records, want 1", dir, len(recs))
	}
	var l Layout
	if err := json.Unmarshal(recs[0], &l); err != nil {
		return Layout{}, fmt.Errorf("hdfs: corrupt layout manifest under %s: %v", dir, err)
	}
	if l.Dir != dir {
		return Layout{}, fmt.Errorf("hdfs: layout manifest under %s names dir %s", dir, l.Dir)
	}
	if l.Buckets <= 0 {
		return Layout{}, fmt.Errorf("hdfs: layout manifest under %s has %d buckets", dir, l.Buckets)
	}
	return l, nil
}
