package hdfs

import (
	"errors"
	"io"
	"testing"
)

func TestOpenStreamsWithIncrementalAccounting(t *testing.T) {
	d := New(Config{Nodes: 1})
	if err := d.WriteFile("f", [][]byte{[]byte("aa"), []byte("bbb"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	d.ResetMetrics()
	r, err := d.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().BytesRead; got != 0 {
		t.Errorf("BytesRead after Open = %d, want 0 (accounting must be incremental)", got)
	}
	rec, err := r.Next()
	if err != nil || string(rec) != "aa" {
		t.Fatalf("Next = %q, %v", rec, err)
	}
	if m := d.Metrics(); m.BytesRead != 2 || m.RecordsRead != 1 {
		t.Errorf("after 1 record: BytesRead=%d RecordsRead=%d, want 2, 1", m.BytesRead, m.RecordsRead)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if m := d.Metrics(); m.BytesRead != 6 || m.RecordsRead != 3 {
		t.Errorf("after full read: BytesRead=%d RecordsRead=%d, want 6, 3", m.BytesRead, m.RecordsRead)
	}
}

func TestOpenRangeClampsAndChargesOnlyScannedBytes(t *testing.T) {
	d := New(Config{Nodes: 1})
	recs := [][]byte{[]byte("0"), []byte("11"), []byte("222"), []byte("3333")}
	if err := d.WriteFile("f", recs); err != nil {
		t.Fatal(err)
	}
	d.ResetMetrics()
	r, err := d.OpenRange("f", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", r.Remaining())
	}
	var got []string
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(rec))
	}
	if len(got) != 2 || got[0] != "11" || got[1] != "222" {
		t.Errorf("range read = %v, want [11 222]", got)
	}
	if m := d.Metrics(); m.BytesRead != 5 || m.RecordsRead != 2 {
		t.Errorf("BytesRead=%d RecordsRead=%d, want 5, 2", m.BytesRead, m.RecordsRead)
	}
	// Ranges past EOF clamp to empty rather than erroring.
	r2, err := d.OpenRange("f", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(); err != io.EOF {
		t.Errorf("Next past EOF = %v, want io.EOF", err)
	}
	if _, err := d.Open("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open(missing) = %v, want ErrNotFound", err)
	}
}

func TestConcatSplicesWithoutRecharging(t *testing.T) {
	d := New(Config{Nodes: 2, BlockSize: 4})
	if err := d.WriteFile("p0", [][]byte{[]byte("aaaa"), []byte("bb")}); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("p1", [][]byte{[]byte("cccc")}); err != nil {
		t.Fatal(err)
	}
	usedBefore := d.Used()
	written := d.Metrics().BytesWritten
	if err := d.Concat("out", []string{"p0", "p1"}); err != nil {
		t.Fatal(err)
	}
	if d.Exists("p0") || d.Exists("p1") {
		t.Error("sources survived Concat")
	}
	if d.Metrics().BytesWritten != written {
		t.Errorf("Concat charged write bytes: %d -> %d", written, d.Metrics().BytesWritten)
	}
	if d.Used() != usedBefore {
		t.Errorf("Concat changed stored bytes: %d -> %d", usedBefore, d.Used())
	}
	recs, err := d.ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[0]) != "aaaa" || string(recs[2]) != "cccc" {
		t.Errorf("concat records wrong: %q", recs)
	}
	sz, err := d.FileSize("out")
	if err != nil || sz != 10 {
		t.Errorf("FileSize = %d, %v, want 10", sz, err)
	}
	if err := d.Concat("out", []string{"x"}); !errors.Is(err, ErrExists) {
		t.Errorf("Concat onto existing = %v, want ErrExists", err)
	}
	if err := d.Concat("out2", []string{"missing"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Concat of missing source = %v, want ErrNotFound", err)
	}
}

func TestSpillChargeAndRelease(t *testing.T) {
	d := New(Config{Nodes: 3})
	w := d.CreateSpill()
	if _, err := w.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if got := d.SpillUsed(); got != 150 {
		t.Errorf("SpillUsed = %d, want 150", got)
	}
	if d.Used() != 0 {
		t.Errorf("spill bytes leaked into DFS storage: Used = %d", d.Used())
	}
	s := w.Close()
	if s.Size() != 150 {
		t.Errorf("Size = %d, want 150", s.Size())
	}
	s.ChargeRead(150)
	s.Release()
	s.Release() // second release is a no-op
	if got := d.SpillUsed(); got != 0 {
		t.Errorf("SpillUsed after release = %d, want 0", got)
	}
	if got := d.PeakSpillUsed(); got != 150 {
		t.Errorf("PeakSpillUsed = %d, want 150", got)
	}
	m := d.Metrics()
	if m.SpillBytesWritten != 150 || m.SpillBytesRead != 150 {
		t.Errorf("spill bytes: wrote %d read %d, want 150, 150", m.SpillBytesWritten, m.SpillBytesRead)
	}
	if m.SpillFilesCreated != 1 || m.SpillFilesReleased != 1 {
		t.Errorf("spill files: created %d released %d, want 1, 1", m.SpillFilesCreated, m.SpillFilesReleased)
	}
	if m.BytesWritten != 0 || m.BytesRead != 0 {
		t.Errorf("spill traffic leaked into DFS byte counters: %+v", m)
	}
}

func TestSpillCapacityEnforced(t *testing.T) {
	d := New(Config{Nodes: 2, LocalSpillPerNode: 100})
	// Spills balance across nodes, so two 80-byte spills fit...
	w0 := d.CreateSpill()
	if _, err := w0.Write(make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	w1 := d.CreateSpill()
	if _, err := w1.Write(make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	// ...but a third overflows whichever node it lands on.
	w2 := d.CreateSpill()
	if _, err := w2.Write(make([]byte, 80)); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("overflow write err = %v, want ErrDiskFull", err)
	}
	w2.Abort()
	w0.Close().Release()
	w1.Close().Release()
	if d.SpillUsed() != 0 {
		t.Errorf("SpillUsed after releases = %d, want 0", d.SpillUsed())
	}
}

func TestSpillAbortReleasesBytes(t *testing.T) {
	d := New(Config{Nodes: 1})
	w := d.CreateSpill()
	if _, err := w.Write(make([]byte, 42)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if d.SpillUsed() != 0 {
		t.Errorf("SpillUsed after abort = %d, want 0", d.SpillUsed())
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after abort succeeded")
	}
	m := d.Metrics()
	if m.SpillFilesCreated != 1 || m.SpillFilesReleased != 1 {
		t.Errorf("spill files: created %d released %d, want 1, 1", m.SpillFilesCreated, m.SpillFilesReleased)
	}
}
