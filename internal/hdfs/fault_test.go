package hdfs

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestErrNotExistSharesIdentityWithErrNotFound(t *testing.T) {
	// Cleanup paths check errors.Is(err, ErrNotExist); everything older
	// checks ErrNotFound. The two must stay the same sentinel.
	if !errors.Is(ErrNotExist, ErrNotFound) || !errors.Is(ErrNotFound, ErrNotExist) {
		t.Fatal("ErrNotExist and ErrNotFound must share identity")
	}
	d := New(Config{Nodes: 1})
	if err := d.Delete("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Delete(missing) = %v, want ErrNotExist", err)
	}
}

func TestRenameMovesFileAtomically(t *testing.T) {
	d := New(Config{Nodes: 2, BlockSize: 8})
	recs := [][]byte{[]byte("hello"), []byte("world!")}
	if err := d.WriteFile("tmp/a", recs); err != nil {
		t.Fatal(err)
	}
	usedBefore := d.Used()
	m := d.Metrics()
	if err := d.Rename("tmp/a", "final/a"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if d.Exists("tmp/a") || !d.Exists("final/a") {
		t.Fatalf("Rename left files %v", d.List())
	}
	got, err := d.ReadAll("final/a")
	if err != nil || len(got) != 2 || !bytes.Equal(got[0], recs[0]) {
		t.Fatalf("ReadAll after rename = %q, %v", got, err)
	}
	if d.Used() != usedBefore {
		t.Errorf("Rename changed used bytes: %d -> %d", usedBefore, d.Used())
	}
	// A metadata move writes no bytes and deletes no files.
	after := d.Metrics()
	after.BytesRead, m.BytesRead = 0, 0 // ReadAll above read bytes
	after.RecordsRead, m.RecordsRead = 0, 0
	if !reflect.DeepEqual(after, m) {
		t.Errorf("Rename touched byte counters: %+v vs %+v", after, m)
	}

	if err := d.Rename("missing", "x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Rename(missing) = %v, want ErrNotExist", err)
	}
	if err := d.WriteFile("other", recs[:1]); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("final/a", "other"); !errors.Is(err, ErrExists) {
		t.Errorf("Rename onto existing = %v, want ErrExists", err)
	}
}

func TestListPrefix(t *testing.T) {
	d := New(Config{Nodes: 1})
	for _, name := range []string{"_tmp/j/map-00000/0/out", "_tmp/j/map-00001/2/out", "_tmp/k/x", "out"} {
		if err := d.WriteFile(name, [][]byte{[]byte("r")}); err != nil {
			t.Fatal(err)
		}
	}
	got := d.ListPrefix("_tmp/j/")
	want := []string{"_tmp/j/map-00000/0/out", "_tmp/j/map-00001/2/out"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ListPrefix = %v, want %v", got, want)
	}
	if got := d.ListPrefix("nope/"); len(got) != 0 {
		t.Errorf("ListPrefix(nope/) = %v, want empty", got)
	}
}

func TestKillNodeReReplicatesBlockAccounting(t *testing.T) {
	d := New(Config{Nodes: 3, BlockSize: 8, Replication: 2})
	recs := [][]byte{make([]byte, 30)}
	if err := d.WriteFile("f", recs); err != nil {
		t.Fatal(err)
	}
	usedBefore := d.Used()
	if _, ok := d.KillNode(0); !ok {
		t.Fatal("KillNode(0) refused")
	}
	if d.NodeAlive(0) || !d.NodeAlive(1) || d.AliveNodes() != 2 || d.NodesKilled() != 1 {
		t.Fatalf("liveness wrong after kill: alive=%d killed=%d", d.AliveNodes(), d.NodesKilled())
	}
	// With a spare live node for every replica, physical usage is conserved:
	// each replica that lived on node 0 moved to the remaining live node.
	if d.Used() != usedBefore {
		t.Errorf("Used after kill = %d, want %d (replicas re-replicated)", d.Used(), usedBefore)
	}
	got, err := d.ReadAll("f")
	if err != nil || len(got) != 1 || len(got[0]) != 30 {
		t.Fatalf("ReadAll after node death: %q, %v", got, err)
	}
	// Killing the same node twice is refused.
	if _, ok := d.KillNode(0); ok {
		t.Error("KillNode(0) twice succeeded")
	}
	// New writes land only on live nodes, under-replicated if needed.
	if _, ok := d.KillNode(1); !ok {
		t.Fatal("KillNode(1) refused")
	}
	if err := d.WriteFile("g", recs); err != nil {
		t.Fatalf("write with one live node: %v", err)
	}
	// Last live node cannot be killed.
	if _, ok := d.KillNode(2); ok {
		t.Error("killed the last live node")
	}
}

func TestKillNodeLosesLocalSpills(t *testing.T) {
	d := New(Config{Nodes: 3})
	w := d.CreateSpillOn(1)
	if w.Node() != 1 {
		t.Fatalf("CreateSpillOn(1) landed on node %d", w.Node())
	}
	if _, err := w.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	sp := w.Close()
	w2 := d.CreateSpillOn(2)
	if _, err := w2.Write(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	lost, ok := d.KillNode(1)
	if !ok || lost != 100 {
		t.Fatalf("KillNode(1) = (%d, %v), want (100, true)", lost, ok)
	}
	if !sp.Lost() {
		t.Error("sealed spill on dead node not marked Lost")
	}
	if d.SpillUsed() != 40 {
		t.Errorf("SpillUsed after kill = %d, want 40 (only the survivor)", d.SpillUsed())
	}
	sp.Release() // must be a no-op after node death
	if d.SpillUsed() != 40 {
		t.Errorf("Release after node death double-freed: SpillUsed = %d", d.SpillUsed())
	}
	// Writers pinned to the dead node fail with ErrNodeLost, including ones
	// created after the death.
	if _, err := d.CreateSpillOn(1).Write([]byte("x")); !errors.Is(err, ErrNodeLost) {
		t.Errorf("spill write on dead node = %v, want ErrNodeLost", err)
	}
	// CreateSpill (no affinity) avoids dead nodes.
	w3 := d.CreateSpill()
	if w3.Node() == 1 {
		t.Error("CreateSpill placed a spill on a dead node")
	}
	w3.Abort()
	w2.Close().Release()
	if d.SpillUsed() != 0 {
		t.Errorf("residual spill bytes: %d", d.SpillUsed())
	}
}
