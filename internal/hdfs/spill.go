package hdfs

import (
	"fmt"
	"sort"
)

// Node-local spill disk. Hadoop map tasks spill sorted runs of intermediate
// output to the local disks of their worker nodes (io.sort.mb overflow), a
// storage pool entirely separate from replicated DFS blocks: spill bytes
// are written once (no replication), read back during the shuffle merge,
// and freed when the job completes. The simulation mirrors that split so
// the paper's intermediate-footprint metrics stay honest when the engine
// runs with a bounded sort buffer: DFS counters measure materialization
// between MR cycles, spill counters measure transient within-cycle disk.

// SpillWriter accumulates one spill file on a node's local disk, charging
// spill accounting incrementally as bytes are written.
type SpillWriter struct {
	d      *DFS
	node   int
	data   []byte
	closed bool
}

// CreateSpill starts a new node-local spill file on the node with the most
// free local-disk space (tasks are not pinned to nodes in the simulation,
// so least-loaded placement stands in for "the task's own node").
func (d *DFS) CreateSpill() *SpillWriter {
	d.mu.Lock()
	defer d.mu.Unlock()
	node := 0
	for n := 1; n < len(d.spillUsed); n++ {
		if d.spillUsed[n] < d.spillUsed[node] {
			node = n
		}
	}
	d.metrics.SpillFilesCreated++
	return &SpillWriter{d: d, node: node}
}

// Write appends bytes to the spill file, charging the node's local disk.
// It fails with a wrapped ErrDiskFull when LocalSpillPerNode is exceeded.
func (w *SpillWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("hdfs: write to closed spill writer")
	}
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if cap := w.d.cfg.LocalSpillPerNode; cap != 0 && w.d.spillUsed[w.node]+int64(len(p)) > cap {
		return 0, fmt.Errorf("%w: node %d local spill disk (%d bytes) exhausted",
			ErrDiskFull, w.node, cap)
	}
	w.data = append(w.data, p...)
	w.d.spillUsed[w.node] += int64(len(p))
	w.d.metrics.SpillBytesWritten += int64(len(p))
	var total int64
	for _, u := range w.d.spillUsed {
		total += u
	}
	if total > w.d.peakSpillUsed {
		w.d.peakSpillUsed = total
	}
	return len(p), nil
}

// Len reports the bytes written so far.
func (w *SpillWriter) Len() int { return len(w.data) }

// Close seals the spill file and returns the readable Spill. The charged
// bytes remain held against the node until Release.
func (w *SpillWriter) Close() *Spill {
	w.closed = true
	return &Spill{d: w.d, node: w.node, data: w.data}
}

// Abort discards the spill file, releasing its charged bytes.
func (w *SpillWriter) Abort() {
	w.closed = true
	s := &Spill{d: w.d, node: w.node, data: w.data}
	w.data = nil
	s.Release()
}

// Spill is a sealed node-local spill file.
type Spill struct {
	d        *DFS
	node     int
	data     []byte
	released bool
}

// Size reports the spill file's length in bytes.
func (s *Spill) Size() int64 { return int64(len(s.data)) }

// Slice returns a view of the spill's bytes without charging any read
// accounting; pair it with ChargeRead as the view is actually consumed.
func (s *Spill) Slice(off, n int) []byte { return s.data[off : off+n] }

// ChargeRead adds consumed bytes to the spill read counters — callers
// decoding a Slice charge exactly what they decode, keeping spill read
// accounting as incremental as FileReader's.
func (s *Spill) ChargeRead(n int64) {
	s.d.mu.Lock()
	s.d.metrics.SpillBytesRead += n
	s.d.mu.Unlock()
}

// Release frees the spill file's local-disk bytes. Releasing twice is a
// no-op. Every spill a job creates must be released when the job finishes
// (or when the task that wrote it is retried), or the simulated local disk
// leaks — the engine and its fault-injection tests enforce this.
func (s *Spill) Release() {
	if s.released {
		return
	}
	s.released = true
	s.d.mu.Lock()
	s.d.spillUsed[s.node] -= int64(len(s.data))
	s.d.metrics.SpillFilesReleased++
	s.d.mu.Unlock()
	s.data = nil
}

// SpillUsed reports total bytes currently held on node-local spill disks.
func (d *DFS) SpillUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, u := range d.spillUsed {
		total += u
	}
	return total
}

// PeakSpillUsed reports the high-water mark of simultaneous node-local
// spill bytes — the transient disk footprint a bounded-memory shuffle
// trades RAM for.
func (d *DFS) PeakSpillUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakSpillUsed
}

// SpillUsedPerNode returns a copy of the per-node local spill usage,
// sorted descending (for balance inspection in tests).
func (d *DFS) SpillUsedPerNode() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := append([]int64(nil), d.spillUsed...)
	sort.Slice(out, func(a, b int) bool { return out[a] > out[b] })
	return out
}
