package hdfs

import (
	"fmt"
	"sort"
)

// Node-local spill disk. Hadoop map tasks spill sorted runs of intermediate
// output to the local disks of their worker nodes (io.sort.mb overflow), a
// storage pool entirely separate from replicated DFS blocks: spill bytes
// are written once (no replication), read back during the shuffle merge,
// and freed when the job completes. The simulation mirrors that split so
// the paper's intermediate-footprint metrics stay honest when the engine
// runs with a bounded sort buffer: DFS counters measure materialization
// between MR cycles, spill counters measure transient within-cycle disk.
//
// Unlike DFS blocks, spill files are unreplicated: when KillNode takes a
// node down, every spill on it is lost and subsequent reads or writes fail
// with ErrNodeLost — the MR engine must regenerate the data by re-running
// the map attempt that produced it, exactly as Hadoop refetches lost map
// output by re-executing the map task.

// spillState is the accounting record shared by a SpillWriter and the
// Spill it seals into, tracked in the DFS spill registry so KillNode can
// find and invalidate every live spill on a dying node. Guarded by DFS.mu.
type spillState struct {
	node     int
	charged  int64 // bytes currently held against the node's spill disk
	lost     bool  // node died while the spill was live
	released bool  // bytes already freed (Release, Abort, or node death)
}

// SpillWriter accumulates one spill file on a node's local disk, charging
// spill accounting incrementally as bytes are written.
type SpillWriter struct {
	d      *DFS
	st     *spillState
	data   []byte
	closed bool
}

// CreateSpill starts a new node-local spill file on the live node with the
// most free local-disk space (for callers with no node affinity).
func (d *DFS) CreateSpill() *SpillWriter {
	d.mu.Lock()
	defer d.mu.Unlock()
	node := -1
	for n := range d.spillUsed {
		if d.dead[n] {
			continue
		}
		if node < 0 || d.spillUsed[n] < d.spillUsed[node] {
			node = n
		}
	}
	if node < 0 {
		node = 0 // all nodes dead: writes will fail with ErrNodeLost
	}
	return d.createSpillLocked(node)
}

// CreateSpillOn starts a new node-local spill file pinned to the given
// node — the MR engine pins each task attempt's spills to the attempt's
// own node, so a node failure loses exactly that node's intermediate data.
// Spills created on a dead node fail their first Write with ErrNodeLost.
func (d *DFS) CreateSpillOn(node int) *SpillWriter {
	d.mu.Lock()
	defer d.mu.Unlock()
	if node < 0 || node >= len(d.spillUsed) {
		node = 0
	}
	return d.createSpillLocked(node)
}

func (d *DFS) createSpillLocked(node int) *SpillWriter {
	st := &spillState{node: node, lost: d.dead[node]}
	if !st.lost {
		d.spillReg[st] = struct{}{}
	} else {
		st.released = true
	}
	d.metrics.SpillFilesCreated++
	return &SpillWriter{d: d, st: st}
}

// Write appends bytes to the spill file, charging the node's local disk.
// It fails with a wrapped ErrDiskFull when LocalSpillPerNode is exceeded,
// and with a wrapped ErrNodeLost if the spill's node has been killed.
func (w *SpillWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("hdfs: write to closed spill writer")
	}
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	if w.st.lost {
		return 0, fmt.Errorf("%w: spill write on dead node %d", ErrNodeLost, w.st.node)
	}
	if cap := w.d.cfg.LocalSpillPerNode; cap != 0 && w.d.spillUsed[w.st.node]+int64(len(p)) > cap {
		return 0, fmt.Errorf("%w: node %d local spill disk (%d bytes) exhausted",
			ErrDiskFull, w.st.node, cap)
	}
	w.data = append(w.data, p...)
	w.st.charged += int64(len(p))
	w.d.spillUsed[w.st.node] += int64(len(p))
	w.d.metrics.SpillBytesWritten += int64(len(p))
	var total int64
	for _, u := range w.d.spillUsed {
		total += u
	}
	if total > w.d.peakSpillUsed {
		w.d.peakSpillUsed = total
	}
	return len(p), nil
}

// Len reports the bytes written so far.
func (w *SpillWriter) Len() int { return len(w.data) }

// Node reports the data node holding this spill file.
func (w *SpillWriter) Node() int { return w.st.node }

// Close seals the spill file and returns the readable Spill. The charged
// bytes remain held against the node until Release (or node death).
func (w *SpillWriter) Close() *Spill {
	w.closed = true
	return &Spill{d: w.d, st: w.st, data: w.data}
}

// Abort discards the spill file, releasing its charged bytes.
func (w *SpillWriter) Abort() {
	w.closed = true
	s := &Spill{d: w.d, st: w.st, data: w.data}
	w.data = nil
	s.Release()
}

// Spill is a sealed node-local spill file.
type Spill struct {
	d    *DFS
	st   *spillState
	data []byte
}

// Size reports the spill file's length in bytes.
func (s *Spill) Size() int64 { return int64(len(s.data)) }

// Node reports the data node holding this spill file.
func (s *Spill) Node() int { return s.st.node }

// Lost reports whether the spill's node has been killed — its data is gone
// and readers must treat the run as unavailable (ErrNodeLost).
func (s *Spill) Lost() bool {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	return s.st.lost
}

// Slice returns a view of the spill's bytes without charging any read
// accounting; pair it with ChargeRead as the view is actually consumed.
// Callers must check Lost() first — the simulation keeps the bytes in
// memory after a node death, but reading them would be cheating.
func (s *Spill) Slice(off, n int) []byte { return s.data[off : off+n] }

// ChargeRead adds consumed bytes to the spill read counters — callers
// decoding a Slice charge exactly what they decode, keeping spill read
// accounting as incremental as FileReader's.
func (s *Spill) ChargeRead(n int64) {
	s.d.mu.Lock()
	s.d.metrics.SpillBytesRead += n
	s.d.mu.Unlock()
}

// Release frees the spill file's local-disk bytes. Releasing twice — or
// releasing a spill whose node already died (the death freed it) — is a
// no-op. Every spill a job creates must be released when the job finishes
// (or when the task that wrote it is retried), or the simulated local disk
// leaks — the engine and its fault-injection tests enforce this.
func (s *Spill) Release() {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	if s.st.released {
		return
	}
	s.st.released = true
	s.d.spillUsed[s.st.node] -= s.st.charged
	s.d.metrics.SpillFilesReleased++
	delete(s.d.spillReg, s.st)
	s.data = nil
}

// SpillUsed reports total bytes currently held on node-local spill disks.
func (d *DFS) SpillUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, u := range d.spillUsed {
		total += u
	}
	return total
}

// PeakSpillUsed reports the high-water mark of simultaneous node-local
// spill bytes — the transient disk footprint a bounded-memory shuffle
// trades RAM for.
func (d *DFS) PeakSpillUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakSpillUsed
}

// SpillUsedPerNode returns a copy of the per-node local spill usage,
// sorted descending (for balance inspection in tests).
func (d *DFS) SpillUsedPerNode() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := append([]int64(nil), d.spillUsed...)
	sort.Slice(out, func(a, b int) bool { return out[a] > out[b] })
	return out
}
