package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateWriteRead(t *testing.T) {
	d := New(Config{Nodes: 3, BlockSize: 64, Replication: 2})
	recs := [][]byte{[]byte("hello"), []byte("world"), {}}
	if err := d.WriteFile("f", recs); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := d.ReadAll("f")
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], recs[0]) || !bytes.Equal(got[1], recs[1]) || len(got[2]) != 0 {
		t.Errorf("ReadAll = %q", got)
	}
	size, err := d.FileSize("f")
	if err != nil || size != 10 {
		t.Errorf("FileSize = %d, %v; want 10", size, err)
	}
	n, err := d.RecordCount("f")
	if err != nil || n != 3 {
		t.Errorf("RecordCount = %d, %v; want 3", n, err)
	}
}

func TestWriterCopiesRecords(t *testing.T) {
	d := New(Config{Nodes: 1})
	w, err := d.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("abc")
	if err := w.Append(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutate caller's buffer after append
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadAll("f")
	if string(got[0]) != "abc" {
		t.Errorf("record = %q, want %q (writer must copy)", got[0], "abc")
	}
}

func TestMetricsAndReplicationAccounting(t *testing.T) {
	d := New(Config{Nodes: 3, BlockSize: 8, Replication: 3})
	if err := d.WriteFile("f", [][]byte{make([]byte, 20)}); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	if m.BytesWritten != 20 {
		t.Errorf("BytesWritten = %d, want 20", m.BytesWritten)
	}
	if m.PhysicalBytesWritten != 60 {
		t.Errorf("PhysicalBytesWritten = %d, want 60", m.PhysicalBytesWritten)
	}
	if d.Used() != 60 {
		t.Errorf("Used = %d, want 60", d.Used())
	}
	if _, err := d.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	m = d.Metrics()
	if m.BytesRead != 20 {
		t.Errorf("BytesRead = %d, want 20", m.BytesRead)
	}
	if m.RecordsRead != 1 || m.RecordsWritten != 1 {
		t.Errorf("records read/written = %d/%d, want 1/1", m.RecordsRead, m.RecordsWritten)
	}
	d.ResetMetrics()
	if d.Metrics() != (Metrics{}) {
		t.Error("ResetMetrics did not zero counters")
	}
	if d.Used() != 60 {
		t.Error("ResetMetrics must not free storage")
	}
}

func TestDiskFullOnWrite(t *testing.T) {
	// 2 nodes x 100 bytes, replication 2 => at most 100 logical bytes fit.
	d := New(Config{Nodes: 2, CapacityPerNode: 100, BlockSize: 10, Replication: 2})
	w, err := d.Create("big")
	if err != nil {
		t.Fatal(err)
	}
	var failed error
	for i := 0; i < 30; i++ {
		if err := w.Append(make([]byte, 10)); err != nil {
			failed = err
			break
		}
	}
	if failed == nil {
		failed = w.Close()
	}
	if !errors.Is(failed, ErrDiskFull) {
		t.Fatalf("expected ErrDiskFull, got %v", failed)
	}
	// Abort must free everything the failed writer placed.
	w.Abort()
	if d.Used() != 0 {
		t.Errorf("Used = %d after abort, want 0", d.Used())
	}
	if d.Exists("big") {
		t.Error("aborted file still exists")
	}
}

func TestDiskFullRespectsReplication(t *testing.T) {
	// Same capacity, replication 1: 200 logical bytes fit.
	d1 := New(Config{Nodes: 2, CapacityPerNode: 100, BlockSize: 10, Replication: 1})
	if err := d1.WriteFile("f", [][]byte{make([]byte, 150)}); err != nil {
		t.Errorf("rep=1 write of 150 bytes failed: %v", err)
	}
	d2 := New(Config{Nodes: 2, CapacityPerNode: 100, BlockSize: 10, Replication: 2})
	if err := d2.WriteFile("f", [][]byte{make([]byte, 150)}); !errors.Is(err, ErrDiskFull) {
		t.Errorf("rep=2 write of 150 bytes: got %v, want ErrDiskFull", err)
	}
	// The failed WriteFile must have cleaned up.
	if d2.Used() != 0 || d2.Exists("f") {
		t.Errorf("failed WriteFile left state: used=%d exists=%v", d2.Used(), d2.Exists("f"))
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	d := New(Config{Nodes: 2, CapacityPerNode: 100, BlockSize: 16, Replication: 2})
	if err := d.WriteFile("a", [][]byte{make([]byte, 80)}); err != nil {
		t.Fatal(err)
	}
	// A second file of 80 bytes cannot fit...
	if err := d.WriteFile("b", [][]byte{make([]byte, 80)}); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("expected ErrDiskFull, got %v", err)
	}
	// ...until the first is deleted.
	if err := d.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("b", [][]byte{make([]byte, 80)}); err != nil {
		t.Errorf("write after delete failed: %v", err)
	}
	// Two deletions: the aborted first attempt at "b", then the explicit
	// Delete of "a".
	m := d.Metrics()
	if m.FilesDeleted != 2 {
		t.Errorf("FilesDeleted = %d, want 2", m.FilesDeleted)
	}
}

func TestErrors(t *testing.T) {
	d := New(Config{Nodes: 1})
	if _, err := d.ReadAll("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ReadAll(missing) = %v", err)
	}
	if err := d.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(missing) = %v", err)
	}
	if _, err := d.FileSize("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("FileSize(missing) = %v", err)
	}
	if err := d.WriteFile("f", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("f"); !errors.Is(err, ErrExists) {
		t.Errorf("Create(existing) = %v", err)
	}
	d.DeleteIfExists("nope") // must not panic
}

func TestClosedWriter(t *testing.T) {
	d := New(Config{Nodes: 1})
	w, _ := d.Create("f")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err == nil {
		t.Error("Append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestList(t *testing.T) {
	d := New(Config{Nodes: 1})
	for _, n := range []string{"c", "a", "b"} {
		if err := d.WriteFile(n, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := d.List()
	want := []string{"a", "b", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("List = %v, want %v", got, want)
	}
}

func TestBlockPlacementBalances(t *testing.T) {
	d := New(Config{Nodes: 4, BlockSize: 10, Replication: 1})
	if err := d.WriteFile("f", [][]byte{make([]byte, 400)}); err != nil {
		t.Fatal(err)
	}
	// 40 blocks over 4 nodes with most-free placement: perfectly balanced.
	for i, u := range d.used {
		if u != 100 {
			t.Errorf("node %d used %d, want 100", i, u)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	d := New(Config{Nodes: 4, BlockSize: 64})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", i)
			recs := make([][]byte, 50)
			for j := range recs {
				recs[j] = bytes.Repeat([]byte{byte(i)}, 10)
			}
			errs[i] = d.WriteFile(name, recs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if got := d.Metrics().BytesWritten; got != 8*50*10 {
		t.Errorf("BytesWritten = %d, want %d", got, 8*50*10)
	}
}

func TestReplicationExceedsNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with replication > nodes did not panic")
		}
	}()
	New(Config{Nodes: 2, Replication: 3})
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{
		BytesRead: 1, BytesWritten: 2, PhysicalBytesWritten: 3, RecordsRead: 4,
		RecordsWritten: 5, FilesCreated: 6, FilesDeleted: 7,
		SpillBytesWritten: 8, SpillBytesRead: 9, SpillFilesCreated: 10, SpillFilesReleased: 11,
	}
	b := a
	a.Add(b)
	want := Metrics{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestPeakUsedTracksHighWater(t *testing.T) {
	d := New(Config{Nodes: 2, BlockSize: 16, Replication: 1})
	if err := d.WriteFile("a", [][]byte{make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("b", [][]byte{make([]byte, 60)}); err != nil {
		t.Fatal(err)
	}
	peak := d.PeakUsed()
	if peak != 160 {
		t.Errorf("PeakUsed = %d, want 160", peak)
	}
	// Deleting frees space but not the high-water mark.
	if err := d.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if d.PeakUsed() != 160 {
		t.Errorf("PeakUsed after delete = %d, want 160", d.PeakUsed())
	}
	// ResetPeak snaps the mark to current usage.
	d.ResetPeak()
	if d.PeakUsed() != 60 {
		t.Errorf("PeakUsed after reset = %d, want 60", d.PeakUsed())
	}
}

func TestConfigAndCapacityAccessors(t *testing.T) {
	d := New(Config{Nodes: 3, CapacityPerNode: 100, BlockSize: 8, Replication: 2})
	cfg := d.Config()
	if cfg.Nodes != 3 || cfg.Replication != 2 {
		t.Errorf("Config = %+v", cfg)
	}
	if d.Capacity() != 300 {
		t.Errorf("Capacity = %d, want 300", d.Capacity())
	}
	unbounded := New(Config{Nodes: 2})
	if unbounded.Capacity() != 0 {
		t.Errorf("unbounded Capacity = %d, want 0", unbounded.Capacity())
	}
}

// TestAccountingInvariantsQuick drives random write/delete sequences and
// checks the core invariants after every step: Used() equals the sum of
// live file sizes × replication, and PeakUsed never decreases below Used.
func TestAccountingInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rep := 1 + rng.Intn(3)
		d := New(Config{Nodes: 3, BlockSize: int64(8 + rng.Intn(64)), Replication: rep})
		live := map[string]int64{}
		next := 0
		for step := 0; step < 40; step++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				name := fmt.Sprintf("f%d", next)
				next++
				var size int64
				recs := make([][]byte, rng.Intn(5))
				for i := range recs {
					recs[i] = make([]byte, rng.Intn(50))
					size += int64(len(recs[i]))
				}
				if err := d.WriteFile(name, recs); err != nil {
					return false
				}
				live[name] = size
			} else {
				for name := range live {
					if err := d.Delete(name); err != nil {
						return false
					}
					delete(live, name)
					break
				}
			}
			var want int64
			for _, sz := range live {
				want += sz * int64(rep)
			}
			if d.Used() != want {
				t.Logf("seed %d step %d: Used=%d want=%d", seed, step, d.Used(), want)
				return false
			}
			if d.PeakUsed() < d.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeletePrefix(t *testing.T) {
	d := New(Config{Nodes: 2, BlockSize: 8, Replication: 2})
	write := func(name, data string) {
		t.Helper()
		if err := d.WriteFile(name, [][]byte{[]byte(data)}); err != nil {
			t.Fatal(err)
		}
	}
	write("_tmp/wf-1/job/map-00000/0/spill", "aaaaaaaaaaaa")
	write("_tmp/wf-1/job/red-00001/2/part", "bbbb")
	write("_tmp/wf-2/job/map-00000/0/spill", "cccc")
	write("out/final", "dddd")
	before := d.Used()

	files, bytes := d.DeletePrefix("_tmp/wf-1/")
	if files != 2 {
		t.Errorf("DeletePrefix files = %d, want 2", files)
	}
	if bytes <= 0 {
		t.Errorf("DeletePrefix bytes = %d, want > 0", bytes)
	}
	for _, gone := range []string{"_tmp/wf-1/job/map-00000/0/spill", "_tmp/wf-1/job/red-00001/2/part"} {
		if d.Exists(gone) {
			t.Errorf("%s survived DeletePrefix", gone)
		}
	}
	for _, kept := range []string{"_tmp/wf-2/job/map-00000/0/spill", "out/final"} {
		if !d.Exists(kept) {
			t.Errorf("%s deleted by DeletePrefix of unrelated prefix", kept)
		}
	}
	// Replicated capacity must be returned to the nodes: with replication 2
	// the used-bytes drop is at least the logical bytes freed.
	if freed := before - d.Used(); freed < bytes {
		t.Errorf("node capacity freed = %d, want >= logical bytes %d", freed, bytes)
	}
	if files, bytes := d.DeletePrefix("_tmp/wf-1/"); files != 0 || bytes != 0 {
		t.Errorf("second DeletePrefix = (%d, %d), want (0, 0)", files, bytes)
	}
}
