// Package hdfs simulates the distributed file system underneath the
// MapReduce engine: record-oriented files split into blocks, block
// replication across data nodes with bounded per-node capacity, and byte
// accounting for every read and write.
//
// The simulation is faithful to the aspects of HDFS that the paper's
// evaluation depends on:
//
//   - every write costs replication × logical bytes of cluster disk
//     (the paper contrasts dfs.replication = 1 vs 2);
//   - nodes have finite capacity, and a workflow whose intermediate results
//     exceed it fails mid-job (the "X" bars in Figures 9, 12, 13);
//   - total HDFS reads/writes are first-class metrics (Figures 10, 12, 14).
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrDiskFull is returned (wrapped) when a write cannot place a block
// because too few data nodes have free capacity.
var ErrDiskFull = errors.New("hdfs: cluster out of disk space")

// ErrNotFound is returned when opening or deleting a file that does not exist.
var ErrNotFound = errors.New("hdfs: file not found")

// ErrNotExist is the canonical sentinel for "the file is already gone".
// It shares identity with ErrNotFound so every existing errors.Is check
// keeps working; cleanup paths that race over the same temporaries (task
// retries, speculative-attempt abort, job-failure sweeps) should test
// errors.Is(err, ErrNotExist) and treat it as benign, while any other
// Delete error stays fatal.
var ErrNotExist = ErrNotFound

// ErrExists is returned when creating a file that already exists.
var ErrExists = errors.New("hdfs: file already exists")

// ErrNodeLost is returned (wrapped) when an operation depends on a data
// node that has been killed: writing or reading a node-local spill file
// that died with its node, or a task attempt pinned to the dead node.
var ErrNodeLost = errors.New("hdfs: data node lost")

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of data nodes. Must be >= 1.
	Nodes int
	// CapacityPerNode bounds the bytes stored per node. Zero means unbounded.
	CapacityPerNode int64
	// BlockSize is the DFS block size in bytes (paper setup: 256MB; scaled
	// down here). Zero defaults to 4 MiB.
	BlockSize int64
	// Replication is the block replication factor (dfs.replication).
	// Zero defaults to 1. Must be <= Nodes.
	Replication int
	// LocalSpillPerNode bounds the node-local spill disk used by the MR
	// engine's sort/spill phase (separate from the replicated DFS store).
	// Zero means unbounded.
	LocalSpillPerNode int64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.BlockSize == 0 {
		c.BlockSize = 4 << 20
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	return c
}

// Metrics holds cumulative byte counters for a DFS instance. All fields are
// logical (pre-replication) except PhysicalBytesWritten.
type Metrics struct {
	BytesRead            int64 // cumulative logical bytes read
	BytesWritten         int64 // cumulative logical bytes written
	PhysicalBytesWritten int64 // cumulative bytes written × replication
	RecordsRead          int64
	RecordsWritten       int64
	FilesCreated         int64
	FilesDeleted         int64

	// Node-local spill disk counters (MR sort/spill phase). Spill bytes are
	// unreplicated and transient — charged by SpillWriter, freed by
	// Spill.Release — and deliberately kept out of the DFS byte counters so
	// the paper's HDFS read/write figures are unaffected by the engine's
	// memory budget.
	SpillBytesWritten  int64
	SpillBytesRead     int64
	SpillFilesCreated  int64
	SpillFilesReleased int64
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.BytesRead += other.BytesRead
	m.BytesWritten += other.BytesWritten
	m.PhysicalBytesWritten += other.PhysicalBytesWritten
	m.RecordsRead += other.RecordsRead
	m.RecordsWritten += other.RecordsWritten
	m.FilesCreated += other.FilesCreated
	m.FilesDeleted += other.FilesDeleted
	m.SpillBytesWritten += other.SpillBytesWritten
	m.SpillBytesRead += other.SpillBytesRead
	m.SpillFilesCreated += other.SpillFilesCreated
	m.SpillFilesReleased += other.SpillFilesReleased
}

type block struct {
	size  int64
	nodes []int // indices of data nodes holding a replica
}

type file struct {
	records [][]byte
	size    int64 // sum of record lengths
	blocks  []block
}

// DFS is a simulated distributed file system. All methods are safe for
// concurrent use.
type DFS struct {
	mu            sync.Mutex
	cfg           Config
	files         map[string]*file
	used          []int64 // per-node bytes stored
	peakUsed      int64   // high-water mark of total bytes stored
	spillUsed     []int64 // per-node local spill bytes held (see spill.go)
	peakSpillUsed int64   // high-water mark of total spill bytes held
	spillReg      map[*spillState]struct{}
	dead          []bool // per-node liveness (KillNode)
	nodesKilled   int
	metrics       Metrics
}

// New creates a cluster per cfg.
func New(cfg Config) *DFS {
	cfg = cfg.withDefaults()
	if cfg.Replication > cfg.Nodes {
		panic(fmt.Sprintf("hdfs: replication %d exceeds node count %d", cfg.Replication, cfg.Nodes))
	}
	return &DFS{
		cfg:       cfg,
		files:     make(map[string]*file),
		used:      make([]int64, cfg.Nodes),
		spillUsed: make([]int64, cfg.Nodes),
		spillReg:  make(map[*spillState]struct{}),
		dead:      make([]bool, cfg.Nodes),
	}
}

// Config returns the cluster configuration.
func (d *DFS) Config() Config { return d.cfg }

// Metrics returns a snapshot of the cumulative counters.
func (d *DFS) Metrics() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.metrics
}

// ResetMetrics zeroes the cumulative counters (stored data is unaffected).
func (d *DFS) ResetMetrics() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.metrics = Metrics{}
}

// Used reports total bytes currently stored across all nodes (physical,
// i.e. including replication).
func (d *DFS) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, u := range d.used {
		total += u
	}
	return total
}

// Capacity reports total cluster capacity; zero means unbounded.
func (d *DFS) Capacity() int64 {
	if d.cfg.CapacityPerNode == 0 {
		return 0
	}
	return d.cfg.CapacityPerNode * int64(d.cfg.Nodes)
}

// Exists reports whether a file exists.
func (d *DFS) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// FileSize returns the logical size of a file in bytes.
func (d *DFS) FileSize(name string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f.size, nil
}

// RecordCount returns the number of records in a file.
func (d *DFS) RecordCount(name string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return len(f.records), nil
}

// List returns the names of all files, sorted.
func (d *DFS) List() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ListPrefix returns the names of all files whose name starts with prefix,
// sorted. The MR engine uses it to sweep a failed job's attempt-scoped
// temporaries ("_tmp/<job>/...") without tracking each one individually.
func (d *DFS) ListPrefix(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var names []string
	for n := range d.files {
		if len(n) >= len(prefix) && n[:len(prefix)] == prefix {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Rename atomically moves a file to a new name without touching its records
// or blocks (a pure NameNode metadata operation, like HDFS rename). It is
// the commit primitive of the MR engine's attempt-scoped output protocol:
// the winning attempt promotes its "_tmp/..." part files to their final
// names in one step. Returns ErrNotExist if oldName is missing and
// ErrExists if newName is already taken.
func (d *DFS) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldName)
	}
	if _, ok := d.files[newName]; ok {
		return fmt.Errorf("%w: %s", ErrExists, newName)
	}
	delete(d.files, oldName)
	d.files[newName] = f
	return nil
}

// Delete removes a file, freeing its blocks.
func (d *DFS) Delete(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	for _, b := range f.blocks {
		for _, n := range b.nodes {
			d.used[n] -= b.size
		}
	}
	delete(d.files, name)
	d.metrics.FilesDeleted++
	return nil
}

// DeleteIfExists removes a file if present; absent files are not an error.
func (d *DFS) DeleteIfExists(name string) {
	if err := d.Delete(name); err != nil && !errors.Is(err, ErrNotExist) {
		panic(err) // Delete only errors with ErrNotExist
	}
}

// DeletePrefix removes every file whose name starts with prefix in one
// NameNode operation, returning how many files and logical bytes were
// reclaimed. The MR engine uses it to retire a whole workflow's temp
// namespace ("_tmp/<workflow-id>/") after a failure or cancellation.
func (d *DFS) DeletePrefix(prefix string) (files int, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for name, f := range d.files {
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		for _, b := range f.blocks {
			for _, n := range b.nodes {
				d.used[n] -= b.size
			}
		}
		delete(d.files, name)
		d.metrics.FilesDeleted++
		files++
		bytes += f.size
	}
	return files, bytes
}

// NodeAlive reports whether data node n is still up.
func (d *DFS) NodeAlive(n int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return n >= 0 && n < len(d.dead) && !d.dead[n]
}

// AliveNodes reports how many data nodes are still up.
func (d *DFS) AliveNodes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.aliveLocked()
}

func (d *DFS) aliveLocked() int {
	alive := 0
	for _, dd := range d.dead {
		if !dd {
			alive++
		}
	}
	return alive
}

// NodesKilled reports how many nodes have been killed since creation.
func (d *DFS) NodesKilled() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nodesKilled
}

// KillNode simulates the permanent loss of data node n and returns the
// node-local spill bytes that died with it. Replicated DFS blocks survive:
// block accounting held by n is re-replicated onto the least-loaded live
// nodes (the record data itself is stored centrally in the simulation, so
// only placement moves — mirroring the NameNode re-replicating from the
// surviving replicas). Node-local spill files on n are lost for good:
// their bytes are freed and every Spill/SpillWriter on the node starts
// failing with ErrNodeLost, which is what forces the MR engine to re-run
// the map attempts whose output lived there. Killing an already-dead node
// or the last live node is refused (ok=false).
func (d *DFS) KillNode(n int) (lostSpillBytes int64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n >= len(d.dead) || d.dead[n] || d.aliveLocked() <= 1 {
		return 0, false
	}
	d.dead[n] = true
	d.nodesKilled++
	// Re-replicate block accounting from the dead node to live nodes that
	// do not already hold the block (best effort: with no eligible target
	// the block simply stays under-replicated).
	for _, f := range d.files {
		for bi := range f.blocks {
			b := &f.blocks[bi]
			for idx, bn := range b.nodes {
				if bn != n {
					continue
				}
				d.used[n] -= b.size
				target := -1
				for cand := range d.dead {
					if d.dead[cand] {
						continue
					}
					dup := false
					for _, other := range b.nodes {
						if other == cand {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					if target < 0 || d.used[cand] < d.used[target] {
						target = cand
					}
				}
				if target >= 0 {
					b.nodes[idx] = target
					d.used[target] += b.size
				} else {
					b.nodes = append(b.nodes[:idx], b.nodes[idx+1:]...)
				}
				break // at most one replica of a block per node
			}
		}
	}
	// Node-local spill files die with the node.
	for st := range d.spillReg {
		if st.node != n || st.released {
			continue
		}
		st.lost = true
		st.released = true
		d.spillUsed[n] -= st.charged
		d.metrics.SpillFilesReleased++
		lostSpillBytes += st.charged
		delete(d.spillReg, st)
	}
	return lostSpillBytes, true
}

// placeBlock charges one block of the given size to rep distinct live
// nodes, choosing the nodes with most free space. Caller holds d.mu. When
// fewer live nodes than the replication factor remain, the block is placed
// under-replicated rather than failing the write.
func (d *DFS) placeBlock(size int64) ([]int, error) {
	rep := d.cfg.Replication
	if alive := d.aliveLocked(); rep > alive {
		rep = alive
	}
	order := make([]int, 0, len(d.used))
	for i := range d.used {
		if !d.dead[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return d.used[order[a]] < d.used[order[b]] })
	nodes := make([]int, 0, rep)
	for _, n := range order {
		if d.cfg.CapacityPerNode != 0 && d.used[n]+size > d.cfg.CapacityPerNode {
			continue
		}
		nodes = append(nodes, n)
		if len(nodes) == rep {
			break
		}
	}
	if len(nodes) < rep {
		return nil, fmt.Errorf("%w: need %d replicas of %d bytes, placed %d",
			ErrDiskFull, rep, size, len(nodes))
	}
	for _, n := range nodes {
		d.used[n] += size
	}
	var total int64
	for _, u := range d.used {
		total += u
	}
	if total > d.peakUsed {
		d.peakUsed = total
	}
	return nodes, nil
}

// PeakUsed reports the high-water mark of physical bytes stored — the
// maximum simultaneous disk footprint seen since creation (or the last
// ResetPeak). This is the quantity that determines whether a workflow
// would fit on the paper's capacity-limited clusters.
func (d *DFS) PeakUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakUsed
}

// ResetPeak sets the high-water mark to the current usage.
func (d *DFS) ResetPeak() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peakUsed = 0
	for _, u := range d.used {
		d.peakUsed += u
	}
}
