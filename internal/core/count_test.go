package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// TestCountExpansionsMatchesExpand property-tests that the O(pairs) count
// equals the cardinality of the materialized expansion, across random data,
// random star patterns, and every unnest state (nested, partially pinned,
// fully unnested).
func TestCountExpansionsMatchesExpand(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			g.Add(
				ex(fmt.Sprintf("s%d", rng.Intn(4))),
				ex(fmt.Sprintf("p%d", rng.Intn(4))),
				ex(fmt.Sprintf("o%d", rng.Intn(6))),
			)
		}
		g.Dedup()
		src := fmt.Sprintf(`PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?s ex:p%d ?b0 .
  ?s ?u0 ?uo0 .
  ?s ?u1 ?uo1 .
}`, rng.Intn(4))
		pq, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			t.Fatal(err)
		}
		for _, tg := range Group(g.Triples) {
			for _, a := range UnbGrpFilter(tg, q.Stars) {
				if CountExpansions(q, a) != int64(len(Expand(q, a))) {
					return false
				}
				// Partially pinned: unnest slot 0, leave slot 1 nested.
				for _, u := range UnnestSlot(q.Stars[0], a, 0) {
					if CountExpansions(q, u) != int64(len(Expand(q, u))) {
						return false
					}
				}
				// Fully unnested.
				for _, p := range BetaUnnest(q.Stars[0], a) {
					if CountExpansions(q, p) != int64(len(Expand(q, p))) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCountJoinedMultiplies(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	var a AnnTG
	for _, tg := range Group(g.Triples) {
		if cand, ok := FilterForStar(tg, q.Stars[0]); ok {
			a = cand
		}
	}
	single := CountExpansions(q, a)
	if single == 0 {
		t.Fatal("expected non-zero count")
	}
	if got := CountJoined(q, []AnnTG{a, a}); got != single*single {
		t.Errorf("CountJoined = %d, want %d", got, single*single)
	}
	if got := CountJoined(q, nil); got != 1 {
		t.Errorf("CountJoined(nil) = %d, want 1 (empty product)", got)
	}
}

func TestCountExpansionsZeroOnEmptyCandidates(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	// Construct an AnnTG with no pair matching the xGO bound pattern.
	a := AnnTG{
		Subject:  1,
		EC:       0,
		Triples:  []PO{{P: 999, O: 1}},
		BoundSel: nestedSel(len(q.Stars[0].Bound)),
		SlotSel:  nestedSel(len(q.Stars[0].Slots)),
	}
	if got := CountExpansions(q, a); got != 0 {
		t.Errorf("CountExpansions = %d, want 0", got)
	}
}
