package core

import (
	"fmt"
	"sort"
	"strings"

	"ntga/internal/query"
	"ntga/internal/rdf"
)

// Nested marks a pattern whose matches are still implicitly represented
// (not yet unnested) in an AnnTG.
const Nested = -1

// AnnTG is an annotated triplegroup: the subject triplegroup restricted to
// the pairs relevant to one star subpattern (its equivalence class), plus
// per-pattern unnest state. It is the paper's AnnTG "extended multi-map"
// representation generalized with explicit selections:
//
//   - SlotSel[i] == Nested means unbound slot i is still implicitly
//     represented: every candidate pair is a match (the concise nested
//     form the lazy strategies preserve);
//   - SlotSel[i] == k pins slot i to Triples[k] (a "perfect" triplegroup
//     component after β-unnest);
//   - BoundSel[i] likewise pins bound pattern i, which happens only when a
//     join on that pattern's object forces a specific value.
type AnnTG struct {
	Subject  rdf.ID
	EC       int // star index (equivalence class tag)
	Triples  []PO
	BoundSel []int // len == len(star.Bound)
	SlotSel  []int // len == len(star.Slots)
}

// Clone deep-copies the AnnTG.
func (a AnnTG) Clone() AnnTG {
	out := a
	out.Triples = append([]PO(nil), a.Triples...)
	out.BoundSel = append([]int(nil), a.BoundSel...)
	out.SlotSel = append([]int(nil), a.SlotSel...)
	return out
}

// FullyUnnested reports whether every unbound slot has been pinned.
func (a AnnTG) FullyUnnested() bool {
	for _, s := range a.SlotSel {
		if s == Nested {
			return false
		}
	}
	return true
}

func (a AnnTG) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "AnnTG(ec=%d, s=%d)[", a.EC, a.Subject)
	for i, p := range a.Triples {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "(%d,%d)", p.P, p.O)
	}
	fmt.Fprintf(&sb, "] bsel=%v ssel=%v", a.BoundSel, a.SlotSel)
	return sb.String()
}

// BoundCandidates returns the indices of pairs that can match bound pattern
// bi, honoring a pinned selection.
func (a AnnTG) BoundCandidates(st *query.Star, bi int) []int {
	if a.BoundSel[bi] != Nested {
		return []int{a.BoundSel[bi]}
	}
	b := st.Bound[bi]
	var out []int
	for i, p := range a.Triples {
		if p.P == b.Prop && b.Obj.Match(p.O) {
			out = append(out, i)
		}
	}
	return out
}

// SlotCandidates returns the indices of pairs that can match unbound slot
// si, honoring a pinned selection.
func (a AnnTG) SlotCandidates(st *query.Star, si int) []int {
	if a.SlotSel[si] != Nested {
		return []int{a.SlotSel[si]}
	}
	sl := st.Slots[si]
	var out []int
	for i, p := range a.Triples {
		if sl.Prop.Match(p.P) && sl.Obj.Match(p.O) {
			out = append(out, i)
		}
	}
	return out
}

// relevant reports whether a pair plays any role in the star.
func relevant(st *query.Star, p PO) bool {
	for _, b := range st.Bound {
		if p.P == b.Prop && b.Obj.Match(p.O) {
			return true
		}
	}
	for _, sl := range st.Slots {
		if sl.Prop.Match(p.P) && sl.Obj.Match(p.O) {
			return true
		}
	}
	return false
}

// UnbGrpFilter is the β group-filter σ^βγ (Definition 1) merged with the
// per-equivalence-class projection of Algorithm 2 (TG_UnbGrpFilter): given
// a subject triplegroup and the query's stars, it returns one AnnTG per
// star the group structurally matches.
//
// A group matches a star when the subject predicate holds and every
// pattern — bound or unbound — has at least one candidate pair. (Definition
// 1 checks only the bound properties; requiring slot candidates too is the
// filter-pushdown refinement discussed in §4: a group with an empty slot
// candidate set would β-unnest to nothing.)
//
// For a star with unbound slots the AnnTG keeps every relevant pair (the
// concise implicit representation); for a bound-only star it keeps only the
// bound-matching pairs (Algorithm 2, line 8).
func UnbGrpFilter(tg TripleGroup, stars []*query.Star) []AnnTG {
	var out []AnnTG
	for _, st := range stars {
		if a, ok := FilterForStar(tg, st); ok {
			out = append(out, a)
		}
	}
	return out
}

// FilterForStar applies σ^βγ for a single star.
func FilterForStar(tg TripleGroup, st *query.Star) (AnnTG, bool) {
	if !st.Subj.Match(tg.Subject) {
		return AnnTG{}, false
	}
	var pairs []PO
	if st.HasUnbound() {
		for _, p := range tg.Triples {
			if relevant(st, p) {
				pairs = append(pairs, p)
			}
		}
	} else {
		for _, p := range tg.Triples {
			for _, b := range st.Bound {
				if p.P == b.Prop && b.Obj.Match(p.O) {
					pairs = append(pairs, p)
					break
				}
			}
		}
	}
	a := AnnTG{
		Subject:  tg.Subject,
		EC:       st.Index,
		Triples:  pairs,
		BoundSel: nestedSel(len(st.Bound)),
		SlotSel:  nestedSel(len(st.Slots)),
	}
	// Structure-based validation: every pattern needs a candidate.
	for bi := range st.Bound {
		if len(a.BoundCandidates(st, bi)) == 0 {
			return AnnTG{}, false
		}
	}
	for si := range st.Slots {
		if len(a.SlotCandidates(st, si)) == 0 {
			return AnnTG{}, false
		}
	}
	return a, true
}

func nestedSel(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = Nested
	}
	return out
}

// BetaUnnest is the β-unnest operator μ^β (Definition 2) generalized to
// multiple unbound slots: it expands an AnnTG into the set of "perfect"
// triplegroups, one per combination of slot candidates, each containing the
// (still nested) bound component plus the chosen unbound triples. Pinned
// slots keep their selection.
func BetaUnnest(st *query.Star, a AnnTG) []AnnTG {
	combos := []AnnTG{a}
	for si := range st.Slots {
		if a.SlotSel[si] != Nested {
			continue
		}
		cands := a.SlotCandidates(st, si)
		next := make([]AnnTG, 0, len(combos)*len(cands))
		for _, c := range combos {
			for _, idx := range cands {
				cc := c.Clone()
				cc.SlotSel[si] = idx
				next = append(next, cc)
			}
		}
		combos = next
	}
	// Compact each perfect triplegroup: drop pairs that are neither
	// bound-relevant nor selected (this is where the footprint of an eager
	// unnest materializes).
	for i := range combos {
		combos[i] = Compact(st, combos[i])
	}
	return combos
}

// Compact rewrites an AnnTG to keep only pairs still needed: pairs matching
// some non-pinned pattern, and pinned selections. Selection indices are
// remapped to the new pair slice.
func Compact(st *query.Star, a AnnTG) AnnTG {
	keep := make([]bool, len(a.Triples))
	for bi, b := range st.Bound {
		if a.BoundSel[bi] != Nested {
			keep[a.BoundSel[bi]] = true
			continue
		}
		for i, p := range a.Triples {
			if p.P == b.Prop && b.Obj.Match(p.O) {
				keep[i] = true
			}
		}
	}
	for si, sl := range st.Slots {
		if a.SlotSel[si] != Nested {
			keep[a.SlotSel[si]] = true
			continue
		}
		for i, p := range a.Triples {
			if sl.Prop.Match(p.P) && sl.Obj.Match(p.O) {
				keep[i] = true
			}
		}
	}
	remap := make([]int, len(a.Triples))
	var pairs []PO
	for i, k := range keep {
		if k {
			remap[i] = len(pairs)
			pairs = append(pairs, a.Triples[i])
		} else {
			remap[i] = -1
		}
	}
	out := AnnTG{Subject: a.Subject, EC: a.EC, Triples: pairs,
		BoundSel: append([]int(nil), a.BoundSel...),
		SlotSel:  append([]int(nil), a.SlotSel...)}
	for bi, s := range out.BoundSel {
		if s != Nested {
			out.BoundSel[bi] = remap[s]
		}
	}
	for si, s := range out.SlotSel {
		if s != Nested {
			out.SlotSel[si] = remap[s]
		}
	}
	return out
}

// PinBound produces one AnnTG per candidate of bound pattern bi, each with
// the pattern pinned — the split needed before a join on a (possibly
// multi-valued) bound property's object.
func PinBound(st *query.Star, a AnnTG, bi int) []AnnTG {
	cands := a.BoundCandidates(st, bi)
	out := make([]AnnTG, 0, len(cands))
	for _, idx := range cands {
		c := a.Clone()
		c.BoundSel[bi] = idx
		out = append(out, Compact(st, c))
	}
	return out
}

// Phi is the partition function φ_m of Definition 3: it assigns a join-key
// ID to one of m buckets. It must be deterministic across map and reduce
// sides, which the reducer exploits to re-derive each partial triplegroup's
// candidate subset without shipping extra state.
func Phi(o rdf.ID, m int) int {
	// Knuth multiplicative hashing; cheap and well-spread for dense IDs.
	return int((uint64(o) * 2654435761) % uint64(m))
}

// PartialBetaUnnest is the partial β-unnest operator μ^β_φm (Definition 3)
// applied to unbound slot si: slot candidates are partitioned into m
// buckets by Phi on their object (the join key); for every non-empty bucket
// one AnnTG is produced carrying the bound component, all pairs relevant to
// other patterns, and the bucket's slot candidates. The slot remains
// Nested; the bucket id is returned alongside so the caller can key the
// shuffle by it.
func PartialBetaUnnest(st *query.Star, a AnnTG, si, m int) []PartialTG {
	cands := a.SlotCandidates(st, si)
	buckets := make(map[int][]int)
	for _, idx := range cands {
		b := Phi(a.Triples[idx].O, m)
		buckets[b] = append(buckets[b], idx)
	}
	order := make([]int, 0, len(buckets))
	for b := range buckets {
		order = append(order, b)
	}
	sort.Ints(order)
	out := make([]PartialTG, 0, len(buckets))
	for _, b := range order {
		idxs := buckets[b]
		keep := make([]bool, len(a.Triples))
		// Pairs needed by other patterns.
		for bi := range st.Bound {
			if a.BoundSel[bi] != Nested {
				keep[a.BoundSel[bi]] = true
				continue
			}
			for _, ci := range a.BoundCandidates(st, bi) {
				keep[ci] = true
			}
		}
		for sj := range st.Slots {
			if sj == si {
				continue
			}
			if a.SlotSel[sj] != Nested {
				keep[a.SlotSel[sj]] = true
				continue
			}
			for _, ci := range a.SlotCandidates(st, sj) {
				keep[ci] = true
			}
		}
		// This bucket's candidates for the joining slot.
		for _, ci := range idxs {
			keep[ci] = true
		}
		remap := make([]int, len(a.Triples))
		var pairs []PO
		for i, k := range keep {
			if k {
				remap[i] = len(pairs)
				pairs = append(pairs, a.Triples[i])
			} else {
				remap[i] = -1
			}
		}
		p := AnnTG{Subject: a.Subject, EC: a.EC, Triples: pairs,
			BoundSel: append([]int(nil), a.BoundSel...),
			SlotSel:  append([]int(nil), a.SlotSel...)}
		for bi, s := range p.BoundSel {
			if s != Nested {
				p.BoundSel[bi] = remap[s]
			}
		}
		for sj, s := range p.SlotSel {
			if s != Nested {
				p.SlotSel[sj] = remap[s]
			}
		}
		out = append(out, PartialTG{Bucket: b, TG: p})
	}
	return out
}

// PartialTG pairs a partially β-unnested AnnTG with its φ_m bucket.
type PartialTG struct {
	Bucket int
	TG     AnnTG
}

// UnnestSlotInBucket finishes a partial β-unnest on the reduce side: it
// expands slot si of a partial AnnTG, selecting only candidates whose join
// key falls in bucket b under φ_m — exactly the candidates the map side
// placed in this partition. Other slots stay as they are.
func UnnestSlotInBucket(st *query.Star, a AnnTG, si, m, b int) []AnnTG {
	var out []AnnTG
	for _, idx := range a.SlotCandidates(st, si) {
		if a.SlotSel[si] == Nested && Phi(a.Triples[idx].O, m) != b {
			continue
		}
		c := a.Clone()
		c.SlotSel[si] = idx
		out = append(out, c)
	}
	return out
}

// UnnestSlot expands a single slot fully (the map-side full β-unnest used
// by TG_UnbJoin).
func UnnestSlot(st *query.Star, a AnnTG, si int) []AnnTG {
	var out []AnnTG
	for _, idx := range a.SlotCandidates(st, si) {
		c := a.Clone()
		c.SlotSel[si] = idx
		out = append(out, Compact(st, c))
	}
	return out
}
