package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ntga/internal/rdf"
)

func TestNewTripleGroupDedupSort(t *testing.T) {
	tg := NewTripleGroup(1, []PO{{3, 4}, {2, 9}, {3, 4}, {2, 1}})
	want := []PO{{2, 1}, {2, 9}, {3, 4}}
	if !reflect.DeepEqual(tg.Triples, want) {
		t.Errorf("Triples = %v, want %v", tg.Triples, want)
	}
	if tg.Len() != 3 {
		t.Errorf("Len = %d", tg.Len())
	}
	if props := tg.Props(); !reflect.DeepEqual(props, []rdf.ID{2, 3}) {
		t.Errorf("Props = %v", props)
	}
}

func TestGroupIsPartition(t *testing.T) {
	// Property: γ assigns every triple to exactly one group, keyed by its
	// subject, and the union of groups reproduces the triple set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		triples := make([]rdf.Triple, n)
		seen := make(map[rdf.Triple]bool)
		for i := range triples {
			triples[i] = rdf.Triple{
				S: rdf.ID(1 + rng.Intn(10)),
				P: rdf.ID(1 + rng.Intn(5)),
				O: rdf.ID(1 + rng.Intn(20)),
			}
			seen[triples[i]] = true
		}
		groups := Group(triples)
		rebuilt := make(map[rdf.Triple]bool)
		var prev rdf.ID
		for gi, g := range groups {
			if gi > 0 && g.Subject <= prev {
				return false // not sorted by subject
			}
			prev = g.Subject
			if g.Len() == 0 {
				return false // empty group emitted
			}
			for _, p := range g.Triples {
				tr := rdf.Triple{S: g.Subject, P: p.P, O: p.O}
				if rebuilt[tr] {
					return false // duplicate across or within groups
				}
				rebuilt[tr] = true
			}
		}
		return reflect.DeepEqual(seen, rebuilt) || (len(seen) == 0 && len(rebuilt) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGroupEmpty(t *testing.T) {
	if got := Group(nil); len(got) != 0 {
		t.Errorf("Group(nil) = %v", got)
	}
}

func TestTripleGroupString(t *testing.T) {
	tg := NewTripleGroup(7, []PO{{1, 2}})
	if tg.String() != "tg(7){(1,2)}" {
		t.Errorf("String = %q", tg.String())
	}
}
