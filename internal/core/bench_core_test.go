package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// benchFixture builds a dataset of nSubjects subjects with mult unbound
// candidates each, plus bound label/xGO pairs, and the matching star query.
func benchFixture(b *testing.B, nSubjects, mult int) (*query.Query, []TripleGroup) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := rdf.NewGraph()
	for s := 0; s < nSubjects; s++ {
		subj := ex(fmt.Sprintf("s%d", s))
		g.Add(subj, ex("label"), rdf.NewLiteral(fmt.Sprintf("label %d", s)))
		g.Add(subj, ex("xGO"), ex(fmt.Sprintf("go%d", rng.Intn(50))))
		g.Add(subj, ex("xGO"), ex(fmt.Sprintf("go%d", rng.Intn(50))))
		for m := 0; m < mult; m++ {
			g.Add(subj, ex(fmt.Sprintf("p%d", m%7)), ex(fmt.Sprintf("o%d", rng.Intn(200))))
		}
	}
	g.Dedup()
	pq, err := sparql.Parse(unboundStarSrc)
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		b.Fatal(err)
	}
	return q, Group(g.Triples)
}

func BenchmarkGroup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	triples := make([]rdf.Triple, 100000)
	for i := range triples {
		triples[i] = rdf.Triple{
			S: rdf.ID(1 + rng.Intn(5000)),
			P: rdf.ID(1 + rng.Intn(40)),
			O: rdf.ID(1 + rng.Intn(20000)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Group(triples); len(got) == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkUnbGrpFilter(b *testing.B) {
	q, groups := benchFixture(b, 2000, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, tg := range groups {
			n += len(UnbGrpFilter(tg, q.Stars))
		}
		if n == 0 {
			b.Fatal("nothing passed the filter")
		}
	}
}

func BenchmarkBetaUnnest(b *testing.B) {
	for _, mult := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("mult%d", mult), func(b *testing.B) {
			q, groups := benchFixture(b, 200, mult)
			var anntgs []AnnTG
			for _, tg := range groups {
				anntgs = append(anntgs, UnbGrpFilter(tg, q.Stars)...)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, a := range anntgs {
					n += len(BetaUnnest(q.Stars[0], a))
				}
				if n == 0 {
					b.Fatal("no perfect TGs")
				}
			}
		})
	}
}

func BenchmarkPartialBetaUnnest(b *testing.B) {
	for _, m := range []int{8, 64, 1024} {
		b.Run(fmt.Sprintf("phi%d", m), func(b *testing.B) {
			q, groups := benchFixture(b, 200, 32)
			var anntgs []AnnTG
			for _, tg := range groups {
				anntgs = append(anntgs, UnbGrpFilter(tg, q.Stars)...)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, a := range anntgs {
					n += len(PartialBetaUnnest(q.Stars[0], a, 0, m))
				}
				if n == 0 {
					b.Fatal("no partial TGs")
				}
			}
		})
	}
}

func BenchmarkCountExpansions(b *testing.B) {
	q, groups := benchFixture(b, 1000, 24)
	var anntgs []AnnTG
	for _, tg := range groups {
		anntgs = append(anntgs, UnbGrpFilter(tg, q.Stars)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int64
		for _, a := range anntgs {
			total += CountExpansions(q, a)
		}
		if total == 0 {
			b.Fatal("zero count")
		}
	}
}

func BenchmarkExpand(b *testing.B) {
	q, groups := benchFixture(b, 200, 12)
	var anntgs []AnnTG
	for _, tg := range groups {
		anntgs = append(anntgs, UnbGrpFilter(tg, q.Stars)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, a := range anntgs {
			n += len(Expand(q, a))
		}
		if n == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkAnnTGCodec(b *testing.B) {
	q, groups := benchFixture(b, 500, 16)
	var encoded [][]byte
	for _, tg := range groups {
		for _, a := range UnbGrpFilter(tg, q.Stars) {
			encoded = append(encoded, EncodeAnnTG(a))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rec := range encoded {
			if _, err := DecodeAnnTG(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}
