// Package core implements the paper's contribution: the Nested TripleGroup
// Data Model and Algebra (NTGA) extended for unbound-property graph
// patterns. It provides
//
//   - TripleGroup — a subject-grouped set of (property, object) pairs,
//     the output of the grouping operator γ;
//   - AnnTG — an annotated triplegroup: a TripleGroup tagged with its
//     equivalence class (star subpattern) and per-pattern unnest state,
//     the paper's extended multi-map representation;
//   - the β group-filter σ^βγ (Definition 1) as UnbGrpFilter;
//   - the β-unnest operator μ^β (Definition 2) as BetaUnnest;
//   - the partial β-unnest operator μ^β_φm (Definition 3) as
//     PartialBetaUnnest / UnnestSlotInBucket;
//   - Expand, which enumerates the variable bindings an (possibly still
//     nested) AnnTG implicitly represents — the content-equivalence side
//     of Lemma 1.
//
// These operators are pure in-memory transforms; package ntgamr lifts them
// onto MapReduce as the physical operators TG_GroupBy, TG_UnbGrpFilter,
// TG_UnbJoin and TG_OptUnbJoin.
package core

import (
	"fmt"
	"sort"
	"strings"

	"ntga/internal/rdf"
)

// PO is one (property, object) pair of a subject triplegroup.
type PO struct {
	P, O rdf.ID
}

// Less orders pairs by (P, O).
func (a PO) Less(b PO) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

// TripleGroup is a set of triples sharing one subject (the γ operator's
// output granule). Triples are held as canonically sorted, de-duplicated
// (P, O) pairs.
type TripleGroup struct {
	Subject rdf.ID
	Triples []PO
}

// NewTripleGroup builds a triplegroup from pairs, sorting and de-duplicating
// them (RDF set semantics).
func NewTripleGroup(subject rdf.ID, pairs []PO) TripleGroup {
	cp := make([]PO, len(pairs))
	copy(cp, pairs)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	out := cp[:0]
	for i, p := range cp {
		if i > 0 && p == cp[i-1] {
			continue
		}
		out = append(out, p)
	}
	return TripleGroup{Subject: subject, Triples: out}
}

// Props returns the distinct property IDs in the group, sorted — the
// paper's tg.props() convenience function.
func (tg TripleGroup) Props() []rdf.ID {
	var out []rdf.ID
	for i, p := range tg.Triples {
		if i == 0 || p.P != tg.Triples[i-1].P {
			out = append(out, p.P)
		}
	}
	return out
}

// Len reports the number of triples in the group.
func (tg TripleGroup) Len() int { return len(tg.Triples) }

func (tg TripleGroup) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tg(%d){", tg.Subject)
	for i, p := range tg.Triples {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "(%d,%d)", p.P, p.O)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Group is the γ (grouping) operator: it partitions triples into subject
// triplegroups. Every triple lands in exactly one group; groups are
// returned in ascending subject order.
func Group(triples []rdf.Triple) []TripleGroup {
	bySubj := make(map[rdf.ID][]PO)
	for _, t := range triples {
		bySubj[t.S] = append(bySubj[t.S], PO{P: t.P, O: t.O})
	}
	subjects := make([]rdf.ID, 0, len(bySubj))
	for s := range bySubj {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	out := make([]TripleGroup, 0, len(subjects))
	for _, s := range subjects {
		out = append(out, NewTripleGroup(s, bySubj[s]))
	}
	return out
}
