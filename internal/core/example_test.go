package core_test

import (
	"fmt"

	"ntga/internal/core"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

// Example walks the paper's running example end to end in memory: group
// triples by subject (γ), apply the β group-filter (σ^βγ) for an
// unbound-property star pattern, and contrast the concise implicit
// representation with its eager β-unnest (μ^β).
func Example() {
	g := rdf.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }
	g.Add(ex("gene9"), ex("label"), rdf.NewLiteral("retinoid X receptor"))
	g.Add(ex("gene9"), ex("xGO"), ex("go1"))
	g.Add(ex("gene9"), ex("xGO"), ex("go9"))
	g.Add(ex("gene9"), ex("synonym"), rdf.NewLiteral("RCoR-1"))
	g.Add(ex("gene9"), ex("xRef"), ex("hs2131"))
	// homod2 lacks xGO and must fail structure validation.
	g.Add(ex("homod2"), ex("label"), rdf.NewLiteral("homeo domain"))

	q := query.MustCompile(sparql.MustParse(`
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ex:xGO ?go .
  ?g ?p ?o .
}`), g.Dict)

	groups := core.Group(g.Triples)
	fmt.Printf("subject triplegroups: %d\n", len(groups))

	var kept []core.AnnTG
	for _, tg := range groups {
		kept = append(kept, core.UnbGrpFilter(tg, q.Stars)...)
	}
	fmt.Printf("groups passing the β group-filter: %d\n", len(kept))

	nested := kept[0]
	fmt.Printf("implicit rows in one nested AnnTG: %d\n", core.CountExpansions(q, nested))

	perfect := core.BetaUnnest(q.Stars[0], nested)
	fmt.Printf("perfect triplegroups after eager β-unnest: %d\n", len(perfect))

	// Output:
	// subject triplegroups: 2
	// groups passing the β group-filter: 1
	// implicit rows in one nested AnnTG: 10
	// perfect triplegroups after eager β-unnest: 5
}
