package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
	"ntga/internal/sparql"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

// paperGraph reproduces the running example around gene9: two bound
// properties (label, xGO — the latter multi-valued) and extra triples that
// match only the unbound pattern.
func paperGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.Add(ex("gene9"), ex("label"), rdf.NewLiteral("retinoid X receptor"))
	g.Add(ex("gene9"), ex("xGO"), ex("go1"))
	g.Add(ex("gene9"), ex("xGO"), ex("go9"))
	g.Add(ex("gene9"), ex("synonym"), rdf.NewLiteral("RCoR-1"))
	g.Add(ex("gene9"), ex("xRef"), ex("hs2131"))
	// homod2 lacks xGO: must be filtered out by σ^βγ.
	g.Add(ex("homod2"), ex("label"), rdf.NewLiteral("homeo domain"))
	g.Add(ex("homod2"), ex("synonym"), rdf.NewLiteral("HD-2"))
	return g
}

func compileStar(t *testing.T, g *rdf.Graph, src string) *query.Query {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return q
}

const unboundStarSrc = `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ex:xGO ?go .
  ?g ?p ?o .
}`

func TestUnbGrpFilterPaperExample(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	groups := Group(g.Triples)
	var kept []AnnTG
	for _, tg := range groups {
		kept = append(kept, UnbGrpFilter(tg, q.Stars)...)
	}
	// Only gene9 matches (homod2 lacks xGO).
	if len(kept) != 1 {
		t.Fatalf("kept %d AnnTGs, want 1", len(kept))
	}
	a := kept[0]
	if a.EC != 0 {
		t.Errorf("EC = %d", a.EC)
	}
	if len(a.Triples) != 5 {
		t.Errorf("retained %d pairs, want all 5 (unbound EC keeps everything)", len(a.Triples))
	}
	if a.FullyUnnested() {
		t.Error("fresh AnnTG should be nested")
	}
}

func TestUnbGrpFilterBoundOnlyProjects(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, `
PREFIX ex: <http://ex/>
SELECT * WHERE {
  ?g ex:label ?l .
  ?g ex:xGO ?go .
}`)
	groups := Group(g.Triples)
	var kept []AnnTG
	for _, tg := range groups {
		kept = append(kept, UnbGrpFilter(tg, q.Stars)...)
	}
	if len(kept) != 1 {
		t.Fatalf("kept %d, want 1", len(kept))
	}
	// Bound-only equivalence class: only label + 2×xGO pairs retained
	// (Algorithm 2 line 8).
	if len(kept[0].Triples) != 3 {
		t.Errorf("retained %d pairs, want 3", len(kept[0].Triples))
	}
}

func TestBetaUnnestProducesPerfectTGs(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	groups := Group(g.Triples)
	a, ok := FilterForStar(groups[0], q.Stars[0]) // gene9 sorts first? find it
	if !ok {
		// groups sorted by subject id; find the one that matches
		for _, tg := range groups {
			if a, ok = FilterForStar(tg, q.Stars[0]); ok {
				break
			}
		}
	}
	if !ok {
		t.Fatal("no group passed the filter")
	}
	perfect := BetaUnnest(q.Stars[0], a)
	// 5 triples in the group → 5 perfect triplegroups (Figure 5(b)).
	if len(perfect) != 5 {
		t.Fatalf("BetaUnnest produced %d TGs, want 5", len(perfect))
	}
	seen := make(map[rdf.ID]bool)
	for _, p := range perfect {
		if !p.FullyUnnested() {
			t.Errorf("perfect TG still nested: %v", p)
		}
		// Each perfect TG holds the bound component (label + 2 xGO = 3
		// pairs) plus the selected unbound triple (which may coincide with
		// a bound pair).
		sel := p.Triples[p.SlotSel[0]]
		seen[sel.O] = true
		if len(p.Triples) > 4 || len(p.Triples) < 3 {
			t.Errorf("perfect TG has %d pairs: %v", len(p.Triples), p)
		}
	}
	if len(seen) != 5 {
		t.Errorf("distinct unbound selections = %d, want 5", len(seen))
	}
}

func TestBetaUnnestEqualsBucketedUnion(t *testing.T) {
	// Property (Definition 3 consistency): for any m, partial β-unnest
	// followed by per-bucket completion equals full β-unnest.
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	var a AnnTG
	found := false
	for _, tg := range Group(g.Triples) {
		if cand, ok := FilterForStar(tg, q.Stars[0]); ok {
			a = cand
			found = true
		}
	}
	if !found {
		t.Fatal("no matching group")
	}
	full := BetaUnnest(q.Stars[0], a)
	for _, m := range []int{1, 2, 3, 7, 64} {
		var viaBuckets []AnnTG
		parts := PartialBetaUnnest(q.Stars[0], a, 0, m)
		for _, pt := range parts {
			done := UnnestSlotInBucket(q.Stars[0], pt.TG, 0, m, pt.Bucket)
			for _, d := range done {
				viaBuckets = append(viaBuckets, Compact(q.Stars[0], d))
			}
		}
		if len(viaBuckets) != len(full) {
			t.Errorf("m=%d: bucketed unnest produced %d TGs, full produced %d",
				m, len(viaBuckets), len(full))
			continue
		}
		// Compare the selected unbound pairs as multisets.
		count := func(tgs []AnnTG) map[PO]int {
			c := make(map[PO]int)
			for _, tg := range tgs {
				c[tg.Triples[tg.SlotSel[0]]]++
			}
			return c
		}
		if !reflect.DeepEqual(count(full), count(viaBuckets)) {
			t.Errorf("m=%d: selections differ: %v vs %v", m, count(full), count(viaBuckets))
		}
	}
}

func TestPartialBetaUnnestBucketCount(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	var a AnnTG
	for _, tg := range Group(g.Triples) {
		if cand, ok := FilterForStar(tg, q.Stars[0]); ok {
			a = cand
		}
	}
	// m=1: everything in one bucket — a single partial TG identical in
	// pair content to the input.
	parts := PartialBetaUnnest(q.Stars[0], a, 0, 1)
	if len(parts) != 1 || parts[0].Bucket != 0 {
		t.Fatalf("m=1 parts = %v", parts)
	}
	if len(parts[0].TG.Triples) != len(a.Triples) {
		t.Errorf("m=1 partial TG dropped pairs: %d vs %d", len(parts[0].TG.Triples), len(a.Triples))
	}
	// Large m: at most one candidate per bucket — degenerates to full
	// unnest cardinality.
	parts = PartialBetaUnnest(q.Stars[0], a, 0, 1<<20)
	if len(parts) != 5 {
		t.Errorf("large-m parts = %d, want 5", len(parts))
	}
}

func TestPinBoundSplitsMultiValued(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	var a AnnTG
	for _, tg := range Group(g.Triples) {
		if cand, ok := FilterForStar(tg, q.Stars[0]); ok {
			a = cand
		}
	}
	// Bound pattern 1 is xGO (multi-valued ×2).
	xgoIdx := -1
	for bi, b := range q.Stars[0].Bound {
		if b.OVar == "go" {
			xgoIdx = bi
		}
	}
	if xgoIdx < 0 {
		t.Fatal("xGO pattern not found")
	}
	pinned := PinBound(q.Stars[0], a, xgoIdx)
	if len(pinned) != 2 {
		t.Fatalf("PinBound produced %d, want 2", len(pinned))
	}
	vals := make(map[rdf.ID]bool)
	for _, p := range pinned {
		if p.BoundSel[xgoIdx] == Nested {
			t.Error("pinned TG not pinned")
			continue
		}
		vals[p.Triples[p.BoundSel[xgoIdx]].O] = true
		v, err := JoinValue(q.Stars[0], p, query.Pos{Star: 0, Role: query.RoleBoundObj, Idx: xgoIdx})
		if err != nil || !vals[v] {
			t.Errorf("JoinValue = %d, %v", v, err)
		}
	}
	if len(vals) != 2 {
		t.Errorf("distinct pinned values = %d, want 2", len(vals))
	}
}

func TestJoinValueErrors(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	var a AnnTG
	for _, tg := range Group(g.Triples) {
		if cand, ok := FilterForStar(tg, q.Stars[0]); ok {
			a = cand
		}
	}
	if _, err := JoinValue(q.Stars[0], a, query.Pos{Star: 0, Role: query.RoleSlotObj, Idx: 0}); err == nil {
		t.Error("JoinValue on nested slot should error")
	}
	if _, err := JoinValue(q.Stars[0], a, query.Pos{Star: 0, Role: query.RoleBoundObj, Idx: 0}); err == nil {
		t.Error("JoinValue on unpinned bound pattern should error")
	}
	if v, err := JoinValue(q.Stars[0], a, query.Pos{Star: 0, Role: query.RoleSubject}); err != nil || v != a.Subject {
		t.Errorf("JoinValue(subject) = %d, %v", v, err)
	}
}

// TestLemma1ContentEquivalence is the paper's Lemma 1 as a property test:
// for random data and random unbound-property star patterns, the rows
// produced by relational evaluation (the reference engine) equal the rows
// obtained by γ → σ^βγ → μ^β → expand. It also checks the lazy form:
// expanding the *nested* AnnTG directly yields the same rows, i.e. the
// implicit representation is lossless.
func TestLemma1ContentEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nSubj := 1 + rng.Intn(6)
		nProp := 2 + rng.Intn(5)
		nObj := 2 + rng.Intn(8)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			g.Add(
				ex(fmt.Sprintf("s%d", rng.Intn(nSubj))),
				ex(fmt.Sprintf("p%d", rng.Intn(nProp))),
				ex(fmt.Sprintf("o%d", rng.Intn(nObj))),
			)
		}
		g.Dedup()
		if g.Len() == 0 {
			return true
		}
		// Random star: 1-2 bound properties, 1-2 unbound slots, optional
		// object filter on a slot.
		src := "PREFIX ex: <http://ex/>\nSELECT * WHERE {\n"
		nBound := 1 + rng.Intn(2)
		for b := 0; b < nBound; b++ {
			src += fmt.Sprintf("  ?s ex:p%d ?b%d .\n", rng.Intn(nProp), b)
		}
		nSlots := 1 + rng.Intn(2)
		for s := 0; s < nSlots; s++ {
			src += fmt.Sprintf("  ?s ?u%d ?uo%d .\n", s, s)
		}
		if rng.Intn(2) == 0 {
			src += fmt.Sprintf("  FILTER(?uo0 != ex:o%d)\n", rng.Intn(nObj))
		}
		src += "}"
		pq, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		want := refengine.Evaluate(q, g)

		var eager, lazy []query.Row
		for _, tg := range Group(g.Triples) {
			for _, a := range UnbGrpFilter(tg, q.Stars) {
				lazy = append(lazy, Expand(q, a)...)
				for _, p := range BetaUnnest(q.Stars[0], a) {
					eager = append(eager, Expand(q, p)...)
				}
			}
		}
		if !query.RowsEqual(want, eager) {
			t.Logf("seed %d query:\n%s\neager mismatch: %s", seed, src, query.DiffRows(want, eager, 5))
			return false
		}
		if !query.RowsEqual(want, lazy) {
			t.Logf("seed %d query:\n%s\nlazy mismatch: %s", seed, src, query.DiffRows(want, lazy, 5))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAnnTGEncodeRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10)
		a := AnnTG{
			Subject: rdf.ID(1 + rng.Intn(1000)),
			EC:      rng.Intn(5),
			Triples: make([]PO, n),
		}
		for i := range a.Triples {
			a.Triples[i] = PO{P: rdf.ID(1 + rng.Intn(50)), O: rdf.ID(1 + rng.Intn(500))}
		}
		nb, ns := rng.Intn(3), rng.Intn(3)
		for i := 0; i < nb; i++ {
			a.BoundSel = append(a.BoundSel, selOrNested(rng, n))
		}
		for i := 0; i < ns; i++ {
			a.SlotSel = append(a.SlotSel, selOrNested(rng, n))
		}
		got, err := DecodeAnnTG(EncodeAnnTG(a))
		if err != nil {
			return false
		}
		return annTGEqual(a, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func selOrNested(rng *rand.Rand, n int) int {
	if n == 0 || rng.Intn(2) == 0 {
		return Nested
	}
	return rng.Intn(n)
}

func annTGEqual(a, b AnnTG) bool {
	if a.Subject != b.Subject || a.EC != b.EC || len(a.Triples) != len(b.Triples) {
		return false
	}
	for i := range a.Triples {
		if a.Triples[i] != b.Triples[i] {
			return false
		}
	}
	return intSliceEq(a.BoundSel, b.BoundSel) && intSliceEq(a.SlotSel, b.SlotSel)
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJoinedEncodeRoundtrip(t *testing.T) {
	comps := []AnnTG{
		{Subject: 1, EC: 0, Triples: []PO{{2, 3}, {4, 5}}, BoundSel: []int{0}, SlotSel: []int{1}},
		{Subject: 9, EC: 1, Triples: []PO{{6, 7}}, BoundSel: []int{Nested}, SlotSel: nil},
	}
	got, err := DecodeJoined(EncodeJoined(comps))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !annTGEqual(got[0], comps[0]) || !annTGEqual(got[1], comps[1]) {
		t.Errorf("roundtrip = %v", got)
	}
	// Corruption handling.
	if _, err := DecodeJoined([]byte{0xFF}); err == nil {
		t.Error("corrupt joined record decoded")
	}
	if _, err := DecodeAnnTG([]byte{1, 0, 1, 2}); err == nil {
		t.Error("truncated AnnTG decoded")
	}
	// Out-of-range selection.
	bad := EncodeAnnTG(AnnTG{Subject: 1, Triples: []PO{{1, 1}}, BoundSel: []int{5}})
	if _, err := DecodeAnnTG(bad); err == nil {
		t.Error("out-of-range selection decoded")
	}
	// Trailing bytes.
	good := EncodeAnnTG(comps[1])
	if _, err := DecodeAnnTG(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodedSizeTracksNesting(t *testing.T) {
	g := paperGraph()
	q := compileStar(t, g, unboundStarSrc)
	var a AnnTG
	for _, tg := range Group(g.Triples) {
		if cand, ok := FilterForStar(tg, q.Stars[0]); ok {
			a = cand
		}
	}
	nestedSize := EncodedSize(a)
	var unnestedSize int
	for _, p := range BetaUnnest(q.Stars[0], a) {
		unnestedSize += EncodedSize(p)
	}
	if unnestedSize <= nestedSize {
		t.Errorf("unnested total %d should exceed nested %d (that is the paper's whole point)",
			unnestedSize, nestedSize)
	}
}

func TestMergeRowsConflict(t *testing.T) {
	a := query.Row{1, 0, 3}
	b := query.Row{1, 2, 0}
	m, ok := MergeRows(a, b)
	if !ok || !m.Equal(query.Row{1, 2, 3}) {
		t.Errorf("MergeRows = %v, %v", m, ok)
	}
	c := query.Row{9, 0, 0}
	if _, ok := MergeRows(a, c); ok {
		t.Error("conflicting merge succeeded")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := AnnTG{Subject: 1, Triples: []PO{{1, 2}}, BoundSel: []int{Nested}, SlotSel: []int{0}}
	b := a.Clone()
	b.Triples[0] = PO{9, 9}
	b.BoundSel[0] = 0
	b.SlotSel[0] = Nested
	if a.Triples[0] != (PO{1, 2}) || a.BoundSel[0] != Nested || a.SlotSel[0] != 0 {
		t.Error("Clone shares storage")
	}
}
