package core

import (
	"fmt"

	"ntga/internal/codec"
)

// PutAnnTG appends the binary encoding of an AnnTG: subject, equivalence
// class, (P,O) pairs, and the two selection vectors (Nested encoded as 0,
// index i as i+1).
func PutAnnTG(e *codec.Buffer, a AnnTG) {
	e.PutID(a.Subject)
	e.PutUvarint(uint64(a.EC))
	e.PutUvarint(uint64(len(a.Triples)))
	for _, p := range a.Triples {
		e.PutID(p.P)
		e.PutID(p.O)
	}
	putSel(e, a.BoundSel)
	putSel(e, a.SlotSel)
}

func putSel(e *codec.Buffer, sel []int) {
	e.PutUvarint(uint64(len(sel)))
	for _, s := range sel {
		e.PutUvarint(uint64(s + 1)) // Nested (-1) -> 0
	}
}

// ReadAnnTG decodes one AnnTG.
func ReadAnnTG(r *codec.Reader) (AnnTG, error) {
	var a AnnTG
	var err error
	if a.Subject, err = r.ID(); err != nil {
		return a, err
	}
	ec, err := r.Uvarint()
	if err != nil {
		return a, err
	}
	a.EC = int(ec)
	n, err := r.Uvarint()
	if err != nil {
		return a, err
	}
	if n > uint64(r.Remaining()) {
		return a, codec.ErrCorrupt
	}
	a.Triples = make([]PO, n)
	for i := range a.Triples {
		if a.Triples[i].P, err = r.ID(); err != nil {
			return a, err
		}
		if a.Triples[i].O, err = r.ID(); err != nil {
			return a, err
		}
	}
	if a.BoundSel, err = readSel(r, len(a.Triples)); err != nil {
		return a, err
	}
	if a.SlotSel, err = readSel(r, len(a.Triples)); err != nil {
		return a, err
	}
	return a, nil
}

func readSel(r *codec.Reader, nPairs int) ([]int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining())+1 {
		return nil, codec.ErrCorrupt
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		s := int(v) - 1
		if s < Nested || s >= nPairs {
			return nil, fmt.Errorf("%w: selection %d out of range (pairs %d)", codec.ErrCorrupt, s, nPairs)
		}
		out[i] = s
	}
	return out, nil
}

// EncodeAnnTG encodes a standalone AnnTG record.
func EncodeAnnTG(a AnnTG) []byte {
	var e codec.Buffer
	PutAnnTG(&e, a)
	return e.Bytes()
}

// DecodeAnnTG decodes a standalone AnnTG record.
func DecodeAnnTG(p []byte) (AnnTG, error) {
	r := codec.NewReader(p)
	a, err := ReadAnnTG(r)
	if err != nil {
		return a, err
	}
	if r.Remaining() != 0 {
		return a, fmt.Errorf("%w: %d trailing bytes", codec.ErrCorrupt, r.Remaining())
	}
	return a, nil
}

// EncodeJoined encodes a joined result: an ordered list of star components.
func EncodeJoined(comps []AnnTG) []byte {
	var e codec.Buffer
	e.PutUvarint(uint64(len(comps)))
	for _, c := range comps {
		PutAnnTG(&e, c)
	}
	return e.Bytes()
}

// DecodeJoined decodes a joined result record.
func DecodeJoined(p []byte) ([]AnnTG, error) {
	r := codec.NewReader(p)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining())+1 {
		return nil, codec.ErrCorrupt
	}
	out := make([]AnnTG, n)
	for i := range out {
		if out[i], err = ReadAnnTG(r); err != nil {
			return nil, err
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", codec.ErrCorrupt, r.Remaining())
	}
	return out, nil
}

// EncodedSize returns the byte size of an AnnTG's encoding without
// materializing it — used by the redundancy statistics.
func EncodedSize(a AnnTG) int {
	var e codec.Buffer
	PutAnnTG(&e, a)
	return e.Len()
}
