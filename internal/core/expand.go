package core

import (
	"fmt"

	"ntga/internal/query"
	"ntga/internal/rdf"
)

// Expand enumerates the variable bindings an AnnTG implicitly represents
// for its star: the cross product of candidates over every pattern, with
// pinned patterns contributing exactly their selection. The returned rows
// are full-width (indexed by q.AllVars) with only the star's variables
// populated; other positions stay NoID.
//
// Expand is the "content" side of the paper's content-equivalence (≅)
// between triplegroups and relational n-tuples: Lemma 1 states that
// expanding μ^β(σ^βγ(γ(T))) yields exactly the rows of the relational
// star-join plan.
func Expand(q *query.Query, a AnnTG) []query.Row {
	st := q.Stars[a.EC]
	base := make(query.Row, len(q.AllVars))
	if st.SubjVar != "" {
		base[q.VarIdx[st.SubjVar]] = a.Subject
	}
	rows := []query.Row{base}
	for bi, b := range st.Bound {
		cands := a.BoundCandidates(st, bi)
		rows = expandPosition(q, rows, a, cands, "", b.OVar)
		if rows == nil {
			return nil
		}
	}
	for si, sl := range st.Slots {
		cands := a.SlotCandidates(st, si)
		rows = expandPosition(q, rows, a, cands, sl.PVar, sl.OVar)
		if rows == nil {
			return nil
		}
	}
	return rows
}

// expandPosition multiplies rows by the candidate set of one pattern,
// binding pVar to the candidate's property and oVar to its object (empty
// names bind nothing).
func expandPosition(q *query.Query, rows []query.Row, a AnnTG, cands []int, pVar, oVar string) []query.Row {
	if len(cands) == 0 {
		return nil
	}
	if pVar == "" && oVar == "" {
		// Constant-object bound pattern: a candidate exists; it neither
		// branches nor binds. (Pairs are a set, so there is exactly one.)
		return rows
	}
	out := make([]query.Row, 0, len(rows)*len(cands))
	for _, r := range rows {
		for _, ci := range cands {
			rr := r.Clone()
			if pVar != "" {
				rr[q.VarIdx[pVar]] = a.Triples[ci].P
			}
			if oVar != "" {
				rr[q.VarIdx[oVar]] = a.Triples[ci].O
			}
			out = append(out, rr)
		}
	}
	return out
}

// MergeRows unifies two partial rows; it fails if both bind a variable to
// different IDs (which would indicate an engine bug, since join variables
// are equated structurally before rows are merged).
func MergeRows(a, b query.Row) (query.Row, bool) {
	out := a.Clone()
	for i, v := range b {
		if v == rdf.NoID {
			continue
		}
		if out[i] != rdf.NoID && out[i] != v {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// ExpandJoined enumerates the full rows of a joined result: the merged
// cross product of every component's expansion. Components are AnnTGs of
// distinct stars whose join variables were pinned when the join executed.
func ExpandJoined(q *query.Query, comps []AnnTG) ([]query.Row, error) {
	if len(comps) == 0 {
		return nil, nil
	}
	rows := Expand(q, comps[0])
	for _, c := range comps[1:] {
		next := Expand(q, c)
		var merged []query.Row
		for _, r := range rows {
			for _, n := range next {
				m, ok := MergeRows(r, n)
				if !ok {
					return nil, fmt.Errorf("core: conflicting bindings while expanding joined triplegroup (ec=%d)", c.EC)
				}
				merged = append(merged, m)
			}
		}
		rows = merged
	}
	return rows, nil
}

// CountExpansions returns the number of binding rows a (possibly still
// nested) AnnTG implicitly represents, without materializing them: the
// product of candidate-set sizes over all binding patterns. It equals
// len(Expand(q, a)) but runs in O(|pairs|) — the basis for answering
// COUNT(*) aggregations over the implicit representation (the paper's
// future-work "aggregation constraints").
func CountExpansions(q *query.Query, a AnnTG) int64 {
	st := q.Stars[a.EC]
	total := int64(1)
	for bi, b := range st.Bound {
		n := int64(len(a.BoundCandidates(st, bi)))
		if n == 0 {
			return 0
		}
		if b.OVar != "" {
			total *= n
		}
	}
	for si := range st.Slots {
		n := int64(len(a.SlotCandidates(st, si)))
		if n == 0 {
			return 0
		}
		total *= n
	}
	return total
}

// CountJoined counts the rows of a joined result record without expansion:
// the product of the components' implicit expansion counts.
func CountJoined(q *query.Query, comps []AnnTG) int64 {
	total := int64(1)
	for _, c := range comps {
		total *= CountExpansions(q, c)
		if total == 0 {
			return 0
		}
	}
	return total
}

// JoinValue returns the ID a position contributes to a join for an AnnTG
// whose relevant pattern has been pinned (or is the subject).
func JoinValue(st *query.Star, a AnnTG, pos query.Pos) (rdf.ID, error) {
	switch pos.Role {
	case query.RoleSubject:
		return a.Subject, nil
	case query.RoleBoundObj:
		if a.BoundSel[pos.Idx] == Nested {
			return rdf.NoID, fmt.Errorf("core: bound pattern %d not pinned for join", pos.Idx)
		}
		return a.Triples[a.BoundSel[pos.Idx]].O, nil
	case query.RoleSlotObj:
		if a.SlotSel[pos.Idx] == Nested {
			return rdf.NoID, fmt.Errorf("core: unbound slot %d not pinned for join", pos.Idx)
		}
		return a.Triples[a.SlotSel[pos.Idx]].O, nil
	default:
		return rdf.NoID, fmt.Errorf("core: unknown role %v", pos.Role)
	}
}
