package hash64

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// The four legacy fnv64a helpers this package replaced, copied verbatim.
// The pin tests prove the consolidated form reproduces every historical
// draw byte-exact, so seeded chaos schedules and dataset versions recorded
// before the consolidation stay valid after it.

func legacyChaosDraw(job, kind string, task, attempt int, phase string, seq int, which string, seed int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%s|%d|%s|%d", job, kind, task, attempt, phase, seq, which, seed)
	return float64(h.Sum64()%100000) / 100000
}

func legacyInjectDraw(job, kind string, task, attempt int, seed int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d", job, kind, task, attempt, seed)
	return float64(h.Sum64() % 10000)
}

func legacyNetDraw(from, to string, seq int, which string, seed int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%s|%d", from, to, seq, which, seed)
	return float64(h.Sum64()%100000) / 100000
}

func legacyVersion(triples [][3]uint32) string {
	h := fnv.New64a()
	for _, t := range triples {
		fmt.Fprintf(h, "%d,%d,%d;", t[0], t[1], t[2])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestPinChaosDraw(t *testing.T) {
	for _, job := range []string{"ntga-group", "ntga-join0", "x"} {
		for task := 0; task < 7; task++ {
			for seq := 0; seq < 5; seq++ {
				for _, which := range []string{"straggle", "fail", "node"} {
					want := legacyChaosDraw(job, "map", task, task%3, "write", seq, which, 42)
					got := float64(Mod(100000, "%s|%s|%d|%d|%s|%d|%s|%d",
						job, "map", task, task%3, "write", seq, which, int64(42))) / 100000
					if got != want {
						t.Fatalf("chaos draw drifted: job=%s task=%d seq=%d which=%s got %v want %v",
							job, task, seq, which, got, want)
					}
				}
			}
		}
	}
}

func TestPinInjectDraw(t *testing.T) {
	for _, kind := range []string{"map", "reduce", "maponly"} {
		for task := 0; task < 9; task++ {
			for attempt := 0; attempt < 4; attempt++ {
				want := legacyInjectDraw("job-a", kind, task, attempt, 7)
				got := float64(Mod(10000, "%s|%s|%d|%d|%d", "job-a", kind, task, attempt, int64(7)))
				if got != want {
					t.Fatalf("inject draw drifted: kind=%s task=%d attempt=%d got %v want %v",
						kind, task, attempt, got, want)
				}
			}
		}
	}
}

func TestPinNetDraw(t *testing.T) {
	for _, e := range [][2]string{{"worker1", "master"}, {"master", "worker2"}, {"a", "b"}} {
		for seq := 0; seq < 11; seq++ {
			for _, which := range []string{"drop", "delay", "sever"} {
				want := legacyNetDraw(e[0], e[1], seq, which, 99)
				got := float64(Mod(100000, "%s|%s|%d|%s|%d", e[0], e[1], seq, which, int64(99))) / 100000
				if got != want {
					t.Fatalf("net draw drifted: edge=%v seq=%d which=%s got %v want %v", e, seq, which, got, want)
				}
			}
		}
	}
}

func TestPinVersionHash(t *testing.T) {
	triples := [][3]uint32{{1, 2, 3}, {4, 5, 6}, {1, 2, 7}, {900, 12, 77}}
	h := New()
	for _, tr := range triples {
		h.Addf("%d,%d,%d;", tr[0], tr[1], tr[2])
	}
	if got, want := h.Hex(), legacyVersion(triples); got != want {
		t.Fatalf("version hash drifted: got %s want %s", got, want)
	}
	if New().Hex() != legacyVersion(nil) {
		t.Fatalf("empty version hash drifted")
	}
}

func TestBucket(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for v := uint64(0); v < 4096; v++ {
		b := Bucket(v, n)
		if b < 0 || b >= n {
			t.Fatalf("Bucket(%d, %d) = %d out of range", v, n, b)
		}
		if b != Bucket(v, n) {
			t.Fatalf("Bucket(%d, %d) not deterministic", v, n)
		}
		counts[b]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty over 4096 consecutive IDs — placement badly skewed", b)
		}
	}
	if Bucket(123, 1) != 0 || Bucket(123, 0) != 0 {
		t.Fatalf("degenerate bucket counts must map to bucket 0")
	}
}

// TestResumeContinuesStream: Resume(h.Sum64()) extends the same fnv64a
// stream — the property the versioned dataset manifest depends on.
func TestResumeContinuesStream(t *testing.T) {
	whole := New()
	whole.Addf("%d,%d,%d;", 1, 2, 3)
	whole.Addf("%d,%d,%d;", 4, 5, 6)

	first := New()
	first.Addf("%d,%d,%d;", 1, 2, 3)
	rest := Resume(first.Sum64())
	rest.Addf("%d,%d,%d;", 4, 5, 6)

	if rest.Sum64() != whole.Sum64() {
		t.Fatalf("resumed hash %016x != whole-stream hash %016x", rest.Sum64(), whole.Sum64())
	}
	if rest.Hex() != whole.Hex() {
		t.Fatalf("Hex mismatch: %s vs %s", rest.Hex(), whole.Hex())
	}
}
