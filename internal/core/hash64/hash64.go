// Package hash64 is the single fnv64a identity hash the repository draws
// from. Seeded chaos injection (task faults, network faults), the dataset
// content-hash handshake, and the partitioned-relation bucket assignment all
// need the same property — a cheap, deterministic, platform-independent map
// from a formatted identity to a 64-bit value — and historically each grew
// its own copy of the same four lines. Consolidating them here keeps the
// draws byte-exact (the formats and moduli live at the call sites, pinned by
// tests) while guaranteeing that the physical data layout and the fault
// model can never drift onto different generators.
package hash64

import (
	"fmt"
	"hash/fnv"
)

// Sum returns the fnv64a hash of fmt.Sprintf(format, args...) without
// materializing the string (the hash consumes the formatter's writes).
func Sum(format string, args ...any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, format, args...)
	return h.Sum64()
}

// Mod returns Sum(format, args...) % mod. Callers keep their own
// floating-point arithmetic on the result — the historical draw shapes
// (x%100000/100000 for chaos, x%10000 < rate*10000 for injected task
// failures) must not be algebraically rearranged, or borderline draws
// could flip.
func Mod(mod uint64, format string, args ...any) uint64 {
	return Sum(format, args...) % mod
}

// Bucket assigns a dictionary ID (or any 64-bit key) to one of n buckets by
// hashing its 8 little-endian bytes. This is the partitioned layout's
// placement function: the loader writes triple t to Bucket(t.S, n), and the
// map-only join rewrite routes records by Bucket(joinValue, n).
func Bucket(v uint64, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum64() % uint64(n))
}

// Hasher accumulates formatted writes into one fnv64a state — the streaming
// form Sum cannot express (e.g. content-hashing a triple relation).
type Hasher struct {
	h interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}
}

// New returns a fresh Hasher.
func New() *Hasher { return &Hasher{h: fnv.New64a()} }

// Resume returns a Hasher whose state continues from a previously observed
// Sum64 value. fnv64a's running state *is* its current sum, so
// Resume(h.Sum64()) extends the exact stream h was hashing — this is what
// lets the versioned dataset manifest persist one 64-bit running hash and
// extend it per ingested delta instead of rehashing the whole relation.
func Resume(sum uint64) *Hasher {
	return &Hasher{h: &resumed{state: sum}}
}

// fnv64aPrime is FNV-1a's 64-bit multiplication prime (matching hash/fnv).
const fnv64aPrime = 1099511628211

// resumed is an fnv64a state seeded from an arbitrary prior sum.
type resumed struct{ state uint64 }

func (r *resumed) Write(p []byte) (int, error) {
	s := r.state
	for _, b := range p {
		s ^= uint64(b)
		s *= fnv64aPrime
	}
	r.state = s
	return len(p), nil
}

func (r *resumed) Sum64() uint64 { return r.state }

// Addf feeds fmt.Sprintf(format, args...) into the hash.
func (h *Hasher) Addf(format string, args ...any) {
	fmt.Fprintf(h.h, format, args...)
}

// Sum64 returns the current hash value.
func (h *Hasher) Sum64() uint64 { return h.h.Sum64() }

// Hex returns the current hash as the fixed-width form the dataset
// handshake ships ("%016x").
func (h *Hasher) Hex() string { return fmt.Sprintf("%016x", h.Sum64()) }
