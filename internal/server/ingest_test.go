package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"ntga/internal/enginetest"
	"ntga/internal/ingest"
	"ntga/internal/plan"
	"ntga/internal/rdf"
)

// batchNT is an N-Triples batch overlapping the BioGraph fixture: one new
// xGO edge for an existing gene (affects star queries over xGO), one
// entirely new gene with a label, and a new GO term it points at.
const batchNT = `<http://ex/gene1> <http://ex/xGO> <http://ex/go0> .
# a brand-new subject minting fresh dictionary terms
<http://ex/gene9> <http://ex/label> "gene 9 label" .
<http://ex/gene9> <http://ex/xGO> <http://ex/go7> .
<http://ex/go7> <http://ex/label> "go term 7" .
<http://ex/go7> <http://ex/type> <http://ex/GOTerm> .
`

// sourceQuery touches only the ex:source predicate, which no batchNT triple
// carries — the cache-maintenance "unaffected" probe.
const sourceQuery = exPrefix + `SELECT * WHERE { ?r ex:source ?src . }`

// mergedBioGraph is BioGraph plus batchNT's triples, the from-scratch
// reference an ingesting server must stay byte-identical to.
func mergedBioGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	g := enginetest.BioGraph()
	add := func(s, p string, o rdf.Term) { g.Add(enginetest.Ex(s), enginetest.Ex(p), o) }
	add("gene1", "xGO", enginetest.Ex("go0"))
	add("gene9", "label", rdf.NewLiteral("gene 9 label"))
	add("gene9", "xGO", enginetest.Ex("go7"))
	add("go7", "label", rdf.NewLiteral("go term 7"))
	add("go7", "type", enginetest.Ex("GOTerm"))
	g.Dedup()
	return g
}

func sortedRows(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

func TestIngestDeltaQueryParity(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()

	before, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	verBefore := s.Snapshot().DatasetVersion

	res, err := s.Ingest(ctx, strings.NewReader(batchNT))
	if err != nil {
		t.Fatal(err)
	}
	if res.Triples != 5 || res.DeltaBlocks != 1 || res.Block == "" {
		t.Fatalf("ingest result = %+v, want 5 triples in 1 delta block", res)
	}
	if res.DatasetVersion == verBefore {
		t.Error("ingest did not move the dataset version")
	}

	after, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache == "hit" {
		t.Error("affected query served from cache across ingest")
	}
	if after.TotalRows <= before.TotalRows {
		t.Errorf("rows %d -> %d across ingest, want growth from the new xGO edges",
			before.TotalRows, after.TotalRows)
	}

	// Byte parity with a from-scratch load of the merged dataset.
	fresh, err := New(Config{}, mergedBioGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := sortedRows(after.Rows), sortedRows(want.Rows); strings.Join(got, "\n") != strings.Join(exp, "\n") {
		t.Errorf("delta-overlay rows differ from merged-dataset rows:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(exp, "\n"))
	}

	m := s.Snapshot()
	if m.Ingests != 1 || m.IngestedTriples != 5 || m.DeltaBlocks != 1 {
		t.Errorf("metrics ingests/triples/delta_blocks = %d/%d/%d, want 1/5/1",
			m.Ingests, m.IngestedTriples, m.DeltaBlocks)
	}
}

// TestIngestCacheMaintenance is the serve-path acceptance check: an ingest
// evicts exactly the cached results its batch can affect, while unaffected
// entries survive re-keyed — the next identical query is a cache hit at the
// new dataset version with zero MR cycles.
func TestIngestCacheMaintenance(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()

	affected, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	unaffected, err := s.Evaluate(ctx, Request{Query: sourceQuery})
	if err != nil {
		t.Fatal(err)
	}
	if affected.Cache != "miss" || unaffected.Cache != "miss" {
		t.Fatalf("priming runs cache = %s/%s, want miss/miss", affected.Cache, unaffected.Cache)
	}

	res, err := s.Ingest(ctx, strings.NewReader(batchNT))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheEvicted != 1 || res.CacheRetained != 1 {
		t.Fatalf("cache maintenance = %d evicted / %d retained, want 1/1 (batch touches xGO but never source)",
			res.CacheEvicted, res.CacheRetained)
	}

	// The unaffected entry survived the ingest re-keyed to the new dataset
	// version: served as a hit, zero MR cycles, same rows.
	hit, err := s.Evaluate(ctx, Request{Query: sourceQuery})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" || hit.Cycles != 0 {
		t.Errorf("unaffected re-query cache=%s cycles=%d, want hit with 0 cycles", hit.Cache, hit.Cycles)
	}
	if strings.Join(hit.Rows, "\n") != strings.Join(unaffected.Rows, "\n") {
		t.Error("retained entry served different rows")
	}

	// The affected entry is gone: the re-query misses and re-executes over
	// base ∪ delta.
	miss, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if miss.Cache != "miss" || miss.Cycles == 0 {
		t.Errorf("affected re-query cache=%s cycles=%d, want miss with real execution", miss.Cache, miss.Cycles)
	}

	m := s.Snapshot()
	if m.CacheRetained != 1 || m.CacheEvicted != 1 {
		t.Errorf("metrics cache_retained/cache_evicted = %d/%d, want 1/1", m.CacheRetained, m.CacheEvicted)
	}
}

func TestIngestBadBatchRejectedAtomically(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	verBefore := s.Snapshot().DatasetVersion

	_, err := s.Ingest(ctx, strings.NewReader("<http://ex/a> <http://ex/b> <http://ex/c> .\nnot a triple\n"))
	if !errors.Is(err, ingest.ErrBadBatch) {
		t.Fatalf("bad batch err = %v, want ingest.ErrBadBatch", err)
	}
	m := s.Snapshot()
	if m.DatasetVersion != verBefore || m.DeltaBlocks != 0 || m.Ingests != 0 {
		t.Errorf("failed batch moved the dataset: %+v", m)
	}

	// A comment-only batch is a no-op success at the current version.
	res, err := s.Ingest(ctx, strings.NewReader("# nothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Triples != 0 || res.DatasetVersion != verBefore || res.Block != "" {
		t.Errorf("empty batch result = %+v, want no-op at current version", res)
	}
}

// TestCompactPreservesVersionAndCache: delta-merge compaction folds the
// chain into a fresh base generation without changing the dataset content —
// the version is stable, cached results stay valid, and post-compaction
// queries return the same rows with an empty delta chain.
func TestCompactPreservesVersionAndCache(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := s.Ingest(ctx, strings.NewReader(batchNT)); err != nil {
		t.Fatal(err)
	}
	overlay, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	verBefore := s.Snapshot().DatasetVersion

	res, err := s.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 1 || res.FoldedTriples != 5 {
		t.Errorf("compaction folded %d blocks / %d triples, want 1/5", res.Folded, res.FoldedTriples)
	}
	m := s.Snapshot()
	if m.DatasetVersion != verBefore {
		t.Error("compaction changed the dataset version (content is unchanged)")
	}
	if m.DeltaBlocks != 0 || m.Compactions != 1 {
		t.Errorf("post-compaction delta_blocks/compactions = %d/%d, want 0/1", m.DeltaBlocks, m.Compactions)
	}

	// Cached-across-compaction: same key, zero cycles.
	hit, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" || hit.Cycles != 0 {
		t.Errorf("post-compaction re-query cache=%s cycles=%d, want hit/0", hit.Cache, hit.Cycles)
	}

	// And a fresh execution over the compacted base matches the overlay run.
	bypass, err := s.Evaluate(ctx, Request{Query: twoStarQuery, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sortedRows(bypass.Rows), "\n") != strings.Join(sortedRows(overlay.Rows), "\n") {
		t.Error("compacted-base rows differ from delta-overlay rows")
	}

	// An empty chain is a no-op.
	if again, err := s.Compact(ctx); err != nil || again.Folded != 0 {
		t.Errorf("second compaction = (%+v, %v), want no-op", again, err)
	}
}

func TestAutoCompactAfterThreshold(t *testing.T) {
	s := newTestServer(t, Config{CompactAfter: 2})
	ctx := context.Background()

	first, err := s.Ingest(ctx, strings.NewReader("<http://ex/n1> <http://ex/p1> <http://ex/o1> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	if first.Compacted || first.DeltaBlocks != 1 {
		t.Fatalf("first ingest = %+v, want 1 uncompacted block", first)
	}
	second, err := s.Ingest(ctx, strings.NewReader("<http://ex/n2> <http://ex/p1> <http://ex/o2> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Compacted || second.DeltaBlocks != 0 {
		t.Fatalf("second ingest = %+v, want auto-compaction at chain length 2", second)
	}
	if got := s.Snapshot().Compactions; got != 1 {
		t.Errorf("compactions = %d, want 1", got)
	}
}

// TestIngestIncrementalCatalogMatchesRescan: the folded catalog equals an
// exact from-scratch rescan of the merged graph — mergeable maintenance
// loses nothing — so the advisor and optimizer see correct statistics.
func TestIngestIncrementalCatalogMatchesRescan(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Ingest(context.Background(), strings.NewReader(batchNT)); err != nil {
		t.Fatal(err)
	}
	exact := plan.FromGraph(mergedBioGraph(t))
	s.dsMu.RLock()
	folded := s.catalog
	s.dsMu.RUnlock()
	if folded.Triples != exact.Triples || folded.Subjects != exact.Subjects {
		t.Errorf("folded catalog triples/subjects = %d/%d, want %d/%d",
			folded.Triples, folded.Subjects, exact.Triples, exact.Subjects)
	}
	// The plan-cache key must move with the catalog: a stale catalog version
	// would silently reuse pre-ingest join orders forever.
	exactVer, err := catalogVersion(exact)
	if err != nil {
		t.Fatal(err)
	}
	s.dsMu.RLock()
	gotVer := s.catalogVersion
	s.dsMu.RUnlock()
	if gotVer != exactVer {
		t.Errorf("folded catalog version %s != exact rescan version %s", gotVer, exactVer)
	}
}

// TestHTTPIngestRoundTrip drives the full write path over the wire: POST
// /ingest lands a delta block queries immediately see, a bad batch comes
// back as a typed 422, and POST /compact folds the chain.
func TestHTTPIngestRoundTrip(t *testing.T) {
	_, c := newHTTPServer(t, Config{})
	ctx := context.Background()

	before, err := c.Query(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}

	res, err := c.Ingest(ctx, strings.NewReader(batchNT))
	if err != nil {
		t.Fatal(err)
	}
	if res.Triples != 5 || res.DeltaBlocks != 1 {
		t.Fatalf("ingest over HTTP = %+v, want 5 triples / 1 block", res)
	}

	after, err := c.Query(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if after.TotalRows <= before.TotalRows {
		t.Errorf("rows %d -> %d across HTTP ingest, want growth", before.TotalRows, after.TotalRows)
	}

	// Typed 422: errors.Is works across the wire.
	if _, err := c.Ingest(ctx, strings.NewReader("garbage\n")); !errors.Is(err, ingest.ErrBadBatch) {
		t.Errorf("bad batch over HTTP = %v, want ingest.ErrBadBatch", err)
	}

	cres, err := c.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Folded != 1 {
		t.Errorf("compaction over HTTP folded %d blocks, want 1", cres.Folded)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ingests != 1 || m.Compactions != 1 || m.DeltaBlocks != 0 {
		t.Errorf("metrics ingests/compactions/delta_blocks = %d/%d/%d, want 1/1/0",
			m.Ingests, m.Compactions, m.DeltaBlocks)
	}
}

// TestDistributedIngestLockstep: a cluster-mode server forwards the batch
// to the master first, applies it locally in lockstep, and both sides land
// on the same dataset version; queries shipped to the fleet see the delta
// rows identically to a local-mode server that ingested the same batch.
func TestDistributedIngestLockstep(t *testing.T) {
	g := enginetest.BioGraph()
	_, _, cc := startServerCluster(t, g)
	dist := newTestServer(t, Config{Reducers: 4, Cluster: cc})
	local := newTestServer(t, Config{Reducers: 4})
	ctx := context.Background()

	// Prime an unaffected cached result on the distributed path, so the
	// maintenance split is exercised over cluster-produced entries too.
	if _, err := dist.Evaluate(ctx, Request{Query: sourceQuery}); err != nil {
		t.Fatal(err)
	}

	res, err := dist.Ingest(ctx, strings.NewReader(batchNT))
	if err != nil {
		t.Fatal(err)
	}
	if res.Triples != 5 || res.CacheRetained != 1 {
		t.Fatalf("distributed ingest = %+v, want 5 triples with the source entry retained", res)
	}
	st, err := cc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetVersion != res.DatasetVersion {
		t.Fatalf("split brain: master at %s, server at %s", st.DatasetVersion, res.DatasetVersion)
	}

	if _, err := local.Ingest(ctx, strings.NewReader(batchNT)); err != nil {
		t.Fatal(err)
	}
	want, err := local.Evaluate(ctx, Request{Query: twoStarQuery, Engine: "ntga-lazy"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.Evaluate(ctx, Request{Query: twoStarQuery, Engine: "ntga-lazy"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sortedRows(got.Rows), "\n") != strings.Join(sortedRows(want.Rows), "\n") {
		t.Error("distributed delta rows differ from local-mode ingest rows")
	}

	// The retained cache entry still serves on the fleet-backed server.
	hit, err := dist.Evaluate(ctx, Request{Query: sourceQuery})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" || hit.Cycles != 0 {
		t.Errorf("retained entry after distributed ingest: cache=%s cycles=%d, want hit/0", hit.Cache, hit.Cycles)
	}

	// Compaction through the server folds both sides; the version holds.
	if _, err := dist.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st, err = cc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DatasetVersion != res.DatasetVersion {
		t.Error("compaction moved the cluster dataset version")
	}
	post, err := dist.Evaluate(ctx, Request{Query: twoStarQuery, Engine: "ntga-lazy", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sortedRows(post.Rows), "\n") != strings.Join(sortedRows(want.Rows), "\n") {
		t.Error("post-compaction distributed rows differ")
	}
}

func TestUnversionableCatalogFailsFastAndRefusesIngest(t *testing.T) {
	// Not parallel: the test swaps the package-level encode seam.
	orig := encodeCatalog
	defer func() { encodeCatalog = orig }()

	encodeCatalog = func(cat *plan.Catalog, w io.Writer) error { return fmt.Errorf("disk full") }
	if _, err := New(Config{}, enginetest.BioGraph()); !errors.Is(err, ErrUnversionable) {
		t.Fatalf("New under failing encode = %v, want ErrUnversionable", err)
	}

	// A server built while the encode worked refuses to move the dataset
	// forward once it stops working: the ingest fails typed and the served
	// view stays at the pre-batch version.
	encodeCatalog = orig
	s := newTestServer(t, Config{})
	verBefore := s.Snapshot().DatasetVersion
	encodeCatalog = func(cat *plan.Catalog, w io.Writer) error { return fmt.Errorf("disk full") }
	_, err := s.Ingest(context.Background(), strings.NewReader(batchNT))
	if !errors.Is(err, ErrUnversionable) {
		t.Fatalf("ingest under failing encode = %v, want ErrUnversionable", err)
	}
	encodeCatalog = orig
	if got := s.Snapshot().DatasetVersion; got != verBefore {
		t.Errorf("served dataset version moved to %s under an unversionable catalog", got)
	}
}
