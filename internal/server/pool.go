// Package server is the resident query service: it keeps one simulated
// DFS, statistics catalog, and engine set loaded and evaluates many
// queries concurrently against them. The pieces are a cluster-wide
// weighted-fair slot pool (this file) that replaces per-run map/reduce
// parallelism, admission control with load shedding, a plan cache over the
// catalog-driven optimizer, an LRU result cache, and an HTTP front end
// (http.go) with sync and async query endpoints.
package server

import (
	"context"
	"fmt"
	"sync"
)

// Pool is the cluster-wide task-slot scheduler. It holds a fixed number of
// map and reduce slots (the simulated cluster's task-tracker capacity) and
// leases them to in-flight workflows with weighted fair sharing: when a
// slot frees up, it goes to the scheduling class (tenant) whose
// slots-in-use-to-weight ratio is lowest, and within a class waiters are
// served strictly FIFO. A workflow plugs into the pool through a Lease,
// which implements mapreduce.SlotPool.
type Pool struct {
	mu      sync.Mutex
	cap     map[string]int // slots per kind ("map", "reduce")
	used    map[string]int
	peak    map[string]int
	waiting map[string]int
	classes map[string]*classState
	granted int64 // total grants, for metrics
	seq     int64 // arrival stamps for FIFO ordering
}

// classState is one scheduling class: a (tenant, weight) pair with its
// per-kind FIFO queues and its current slot usage across all kinds.
type classState struct {
	name   string
	weight int
	inUse  int
	queues map[string][]*waiter
}

type waiter struct {
	ch  chan func() // receives the release function when granted
	seq int64
}

// NewPool builds a pool with the given map and reduce slot counts. Both
// must be positive: a zero-capacity kind would deadlock every workflow
// that schedules a task of that kind.
func NewPool(mapSlots, reduceSlots int) (*Pool, error) {
	if mapSlots <= 0 || reduceSlots <= 0 {
		return nil, fmt.Errorf("server: slot pool needs positive capacities (got map=%d reduce=%d)", mapSlots, reduceSlots)
	}
	return &Pool{
		cap:     map[string]int{"map": mapSlots, "reduce": reduceSlots},
		used:    map[string]int{},
		peak:    map[string]int{},
		waiting: map[string]int{},
		classes: map[string]*classState{},
	}, nil
}

// Lease returns the pool handle one workflow (or one tenant's workflows)
// acquires slots through. Leases of the same tenant share a scheduling
// class; weight scales the class's fair share (weight 2 is entitled to
// twice the slots of weight 1 under contention). Non-positive weights are
// treated as 1. The first Lease for a tenant fixes its weight.
func (p *Pool) Lease(tenant string, weight int) *Lease {
	if weight <= 0 {
		weight = 1
	}
	if tenant == "" {
		tenant = "default"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.classes[tenant]
	if !ok {
		c = &classState{name: tenant, weight: weight, queues: map[string][]*waiter{}}
		p.classes[tenant] = c
	}
	return &Lease{p: p, c: c}
}

// Lease is a workflow's handle on the pool; it implements
// mapreduce.SlotPool.
type Lease struct {
	p *Pool
	c *classState
}

// Acquire blocks until the pool grants a slot of the given kind to this
// lease's class, or ctx dies. The returned release function is idempotent.
func (l *Lease) Acquire(ctx context.Context, kind string) (func(), error) {
	p, c := l.p, l.c
	p.mu.Lock()
	capn, ok := p.cap[kind]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("server: unknown slot kind %q", kind)
	}
	// Fast path: free capacity and nobody queued ahead of us.
	if p.used[kind] < capn && p.waiting[kind] == 0 {
		p.grantLocked(kind, c)
		p.mu.Unlock()
		return p.releaseFn(kind, c), nil
	}
	w := &waiter{ch: make(chan func(), 1), seq: p.seq}
	p.seq++
	c.queues[kind] = append(c.queues[kind], w)
	p.waiting[kind]++
	p.mu.Unlock()

	select {
	case release := <-w.ch:
		return release, nil
	case <-ctx.Done():
		p.mu.Lock()
		if p.removeWaiterLocked(kind, c, w) {
			p.mu.Unlock()
			return nil, context.Cause(ctx)
		}
		p.mu.Unlock()
		// A grant raced the cancellation: the slot is already ours, so
		// take it and hand it straight back before failing.
		release := <-w.ch
		release()
		return nil, context.Cause(ctx)
	}
}

// grantLocked charges one slot of kind to class c.
func (p *Pool) grantLocked(kind string, c *classState) {
	p.used[kind]++
	c.inUse++
	p.granted++
	if p.used[kind] > p.peak[kind] {
		p.peak[kind] = p.used[kind]
	}
}

// releaseFn builds the idempotent release closure for one granted slot.
func (p *Pool) releaseFn(kind string, c *classState) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.used[kind]--
			c.inUse--
			p.dispatchLocked(kind)
			p.mu.Unlock()
		})
	}
}

// dispatchLocked hands freed capacity of one kind to queued waiters:
// repeatedly pick the class with the lowest used/weight ratio among those
// with waiters (ties broken by earliest queued waiter, so no class is
// starved), pop its FIFO head, and grant.
func (p *Pool) dispatchLocked(kind string) {
	for p.used[kind] < p.cap[kind] {
		var best *classState
		for _, c := range p.classes {
			if len(c.queues[kind]) == 0 {
				continue
			}
			if best == nil || classLess(c, best, kind) {
				best = c
			}
		}
		if best == nil {
			return
		}
		w := best.queues[kind][0]
		best.queues[kind] = best.queues[kind][1:]
		p.waiting[kind]--
		p.grantLocked(kind, best)
		w.ch <- p.releaseFn(kind, best)
	}
}

// classLess orders scheduling classes for the next grant: lower
// used/weight ratio first (cross-multiplied to stay in integers), FIFO
// arrival order as the tie-break.
func classLess(a, b *classState, kind string) bool {
	ra, rb := a.inUse*b.weight, b.inUse*a.weight
	if ra != rb {
		return ra < rb
	}
	return a.queues[kind][0].seq < b.queues[kind][0].seq
}

// removeWaiterLocked unqueues w; false means it was already granted.
func (p *Pool) removeWaiterLocked(kind string, c *classState, w *waiter) bool {
	q := c.queues[kind]
	for i, x := range q {
		if x == w {
			c.queues[kind] = append(q[:i:i], q[i+1:]...)
			p.waiting[kind]--
			return true
		}
	}
	return false
}

// SlotStats is a point-in-time view of one slot kind, for /metrics.
type SlotStats struct {
	Capacity int `json:"capacity"`
	InUse    int `json:"in_use"`
	Peak     int `json:"peak"`
	Waiting  int `json:"waiting"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() (byKind map[string]SlotStats, granted int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	byKind = make(map[string]SlotStats, len(p.cap))
	for kind, capn := range p.cap {
		byKind[kind] = SlotStats{
			Capacity: capn,
			InUse:    p.used[kind],
			Peak:     p.peak[kind],
			Waiting:  p.waiting[kind],
		}
	}
	return byKind, p.granted
}
