package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ntga/internal/enginetest"
)

const exPrefix = "PREFIX ex: <http://ex/>\n"

const twoStarQuery = exPrefix + `SELECT * WHERE {
  ?g ex:label ?gl . ?g ex:xGO ?go .
  ?go ex:label ?gol . ?go ex:type ?t .
}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg, enginetest.BioGraph())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestEvaluateBasicAndResultCache(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()

	first, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" || first.PlanCache != "miss" {
		t.Errorf("first run cache=%s plan_cache=%s, want miss/miss", first.Cache, first.PlanCache)
	}
	if first.Cycles == 0 {
		t.Error("first run executed zero MR cycles")
	}
	if first.TotalRows == 0 || len(first.Rows) != first.TotalRows {
		t.Errorf("rows=%d total=%d, want non-empty and untruncated", len(first.Rows), first.TotalRows)
	}
	if len(first.Header) == 0 {
		t.Error("no header")
	}

	second, err := s.Evaluate(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" || second.PlanCache != "hit" {
		t.Errorf("repeat run cache=%s plan_cache=%s, want hit/hit", second.Cache, second.PlanCache)
	}
	if second.Cycles != 0 {
		t.Errorf("cache hit ran %d MR cycles, want 0", second.Cycles)
	}
	if strings.Join(second.Rows, "\n") != strings.Join(first.Rows, "\n") {
		t.Error("cached rows differ from executed rows")
	}

	bypass, err := s.Evaluate(ctx, Request{Query: twoStarQuery, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if bypass.Cache != "bypass" || bypass.Cycles == 0 {
		t.Errorf("NoCache run cache=%s cycles=%d, want bypass with real execution", bypass.Cache, bypass.Cycles)
	}
	if strings.Join(bypass.Rows, "\n") != strings.Join(first.Rows, "\n") {
		t.Error("bypass rows differ from first run")
	}

	m := s.Snapshot()
	if m.Queries != 3 || m.Succeeded != 3 || m.Failed != 0 {
		t.Errorf("metrics queries/succeeded/failed = %d/%d/%d, want 3/3/0", m.Queries, m.Succeeded, m.Failed)
	}
	if m.ResultCache.Hits != 1 {
		t.Errorf("result cache hits = %d, want 1", m.ResultCache.Hits)
	}
}

func TestEvaluateCount(t *testing.T) {
	s := newTestServer(t, Config{})
	q := exPrefix + `SELECT (COUNT(*) AS ?n) WHERE { ?g ex:label ?l . ?g ex:xGO ?go . }`
	r, err := s.Evaluate(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsCount || r.Count == 0 {
		t.Fatalf("count response = %+v, want IsCount with non-zero Count", r)
	}
	hit, err := s.Evaluate(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" || hit.Count != r.Count {
		t.Errorf("cached count = %d (cache=%s), want %d from hit", hit.Count, hit.Cache, r.Count)
	}
}

func TestEvaluateLimitTruncatesRowsOnly(t *testing.T) {
	s := newTestServer(t, Config{})
	full, err := s.Evaluate(context.Background(), Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalRows < 2 {
		t.Skipf("need >= 2 rows, have %d", full.TotalRows)
	}
	lim, err := s.Evaluate(context.Background(), Request{Query: twoStarQuery, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Rows) != 1 || lim.TotalRows != full.TotalRows {
		t.Errorf("limit 1: rows=%d total=%d, want 1/%d", len(lim.Rows), lim.TotalRows, full.TotalRows)
	}
	if lim.Rows[0] != full.Rows[0] {
		t.Errorf("limited first row %q != full first row %q", lim.Rows[0], full.Rows[0])
	}
}

func TestEvaluateBadInputs(t *testing.T) {
	s := newTestServer(t, Config{})
	for name, req := range map[string]Request{
		"empty":          {Query: "   "},
		"syntax":         {Query: "SELECT WHERE {"},
		"unknown engine": {Query: twoStarQuery, Engine: "mongodb"},
	} {
		if _, err := s.Evaluate(context.Background(), req); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%s: err = %v, want ErrBadQuery", name, err)
		}
	}
	if got := s.Snapshot().Failed; got != 3 {
		t.Errorf("failed counter = %d, want 3", got)
	}
}

func TestEngineSelection(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, eng := range []string{"pig", "hive", "ntga-eager", "ntga-lazy", "auto"} {
		r, err := s.Evaluate(context.Background(), Request{Query: twoStarQuery, Engine: eng, NoCache: true})
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		if r.Engine == "" || r.Engine == "auto" {
			t.Errorf("engine %s resolved to %q", eng, r.Engine)
		}
		if r.TotalRows == 0 {
			t.Errorf("engine %s returned no rows", eng)
		}
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 2})
	// Fill the whole admission window (running + queued), then one more
	// request must shed with ErrOverloaded without blocking.
	var releases []func()
	for i := 0; i < 3; i++ {
		release, err := s.admit()
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		releases = append(releases, release)
	}
	if _, err := s.Evaluate(context.Background(), Request{Query: twoStarQuery}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-admission Evaluate = %v, want ErrOverloaded", err)
	}
	if _, err := s.Submit(Request{Query: twoStarQuery}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-admission Submit = %v, want ErrOverloaded", err)
	}
	if got := s.Snapshot().Shed; got != 2 {
		t.Errorf("shed counter = %d, want 2", got)
	}
	for _, r := range releases {
		r()
	}
	if _, err := s.Evaluate(context.Background(), Request{Query: twoStarQuery}); err != nil {
		t.Fatalf("post-release Evaluate = %v, want success", err)
	}
}

func TestDeadlineSweepsTemps(t *testing.T) {
	s := newTestServer(t, Config{})
	_, err := s.Evaluate(context.Background(), Request{Query: twoStarQuery, NoCache: true, TimeoutMS: 1})
	if err == nil {
		// The tiny deadline can occasionally lose the race on a fast
		// machine; a success is not a failure of the sweep invariant.
		t.Log("query beat the 1ms deadline")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if temps := s.dfs.ListPrefix("_tmp/"); len(temps) != 0 {
		t.Errorf("temp files leaked after deadline: %v", temps)
	}
	// The service must remain fully usable after a timed-out query.
	if _, err := s.Evaluate(context.Background(), Request{Query: twoStarQuery}); err != nil {
		t.Fatalf("post-deadline Evaluate = %v", err)
	}
}

func TestAsyncJobs(t *testing.T) {
	s := newTestServer(t, Config{})
	id, err := s.Submit(Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Response == nil || st.Response.TotalRows == 0 {
		t.Fatalf("job = %+v, want done with rows", st)
	}
	if _, ok := s.JobStatus("job-999999"); ok {
		t.Error("unknown job id resolved")
	}
	if _, err := s.WaitJob(ctx, "job-999999"); err == nil {
		t.Error("WaitJob on unknown id succeeded")
	}

	bad, err := s.Submit(Request{Query: "SELECT WHERE {"})
	if err != nil {
		t.Fatal(err)
	}
	st, err = s.WaitJob(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || st.Error == "" {
		t.Fatalf("bad-query job = %+v, want failed with error text", st)
	}
}

func TestDatasetAndCatalogVersionsDiffer(t *testing.T) {
	a := newTestServer(t, Config{})
	big, err := New(Config{}, enginetest.RandomGraph(7, 500, 40, 12, 60))
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if a.datasetVersion == big.datasetVersion {
		t.Error("different datasets share a dataset version")
	}
	if a.catalogVersion == big.catalogVersion {
		t.Error("different datasets share a catalog version")
	}
}
