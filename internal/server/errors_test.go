package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// The error table must round-trip: the status a typed error maps to must
// map back to an error that errors.Is-matches the original.
func TestErrorStatusRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code int
	}{
		{"overloaded", ErrOverloaded, http.StatusTooManyRequests},
		{"bad query", ErrBadQuery, http.StatusBadRequest},
		{"unavailable", ErrUnavailable, http.StatusServiceUnavailable},
		{"wrapped unavailable", fmt.Errorf("%w: master lost", ErrUnavailable), http.StatusServiceUnavailable},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", context.Canceled, StatusClientClosedRequest},
		{"wrapped overloaded", fmt.Errorf("tenant x: %w", ErrOverloaded), http.StatusTooManyRequests},
		{"wrapped bad query", fmt.Errorf("%w: parse: oops", ErrBadQuery), http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code := statusForError(c.err)
			if code != c.code {
				t.Fatalf("statusForError(%v) = %d, want %d", c.err, code, c.code)
			}
			back := errorForStatus(code, c.err.Error())
			for _, e := range errorStatuses {
				if e.code == c.code && !errors.Is(back, e.err) {
					t.Fatalf("errorForStatus(%d) = %v does not match table error %v", code, back, e.err)
				}
			}
		})
	}
	if statusForError(errors.New("boom")) != http.StatusInternalServerError {
		t.Error("unmapped error must be a 500")
	}
	if err := errorForStatus(http.StatusTeapot, "odd"); err == nil || errors.Is(err, ErrBadQuery) {
		t.Errorf("unmapped status must give an untyped error, got %v", err)
	}
	// Retry-After hints travel only on the "try again soon" statuses.
	if retryAfterSeconds(http.StatusServiceUnavailable) != 2 {
		t.Error("503 lost its Retry-After hint")
	}
	if retryAfterSeconds(http.StatusTooManyRequests) != 1 {
		t.Error("429 lost its Retry-After hint")
	}
	if retryAfterSeconds(http.StatusBadRequest) != 0 {
		t.Error("400 grew a Retry-After hint")
	}
}
