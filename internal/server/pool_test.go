package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewPoolRejectsNonPositiveCapacities(t *testing.T) {
	for _, c := range [][2]int{{0, 4}, {4, 0}, {-1, 4}, {4, -1}} {
		if _, err := NewPool(c[0], c[1]); err == nil {
			t.Errorf("NewPool(%d, %d) succeeded, want error", c[0], c[1])
		}
	}
	if _, err := NewPool(1, 1); err != nil {
		t.Fatalf("NewPool(1, 1) = %v", err)
	}
}

func TestPoolUnknownKind(t *testing.T) {
	p, _ := NewPool(1, 1)
	if _, err := p.Lease("t", 1).Acquire(context.Background(), "shuffle"); err == nil {
		t.Fatal("Acquire of unknown kind succeeded")
	}
}

// TestPoolEnforcesCapacity hammers one kind from many goroutines and
// checks the high-water mark of concurrently held slots never exceeds the
// capacity, and that every grant is eventually released back.
func TestPoolEnforcesCapacity(t *testing.T) {
	const capacity = 3
	p, _ := NewPool(capacity, 1)
	l := p.Lease("t", 1)
	var (
		mu         sync.Mutex
		held, peak int
		wg         sync.WaitGroup
	)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background(), "map")
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			held++
			if held > peak {
				peak = held
			}
			mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			mu.Lock()
			held--
			mu.Unlock()
			release()
			release() // idempotent: double release must not free a phantom slot
		}()
	}
	wg.Wait()
	if peak > capacity {
		t.Errorf("peak concurrent slots = %d, cap %d", peak, capacity)
	}
	stats, granted := p.Stats()
	if got := stats["map"]; got.InUse != 0 || got.Waiting != 0 {
		t.Errorf("after drain: in_use=%d waiting=%d, want 0/0", got.InUse, got.Waiting)
	}
	if granted != 50 {
		t.Errorf("granted = %d, want 50", granted)
	}
	if stats["map"].Peak > capacity {
		t.Errorf("pool-recorded peak = %d, cap %d", stats["map"].Peak, capacity)
	}
}

// TestPoolFIFOWithinClass saturates the single slot, queues waiters in a
// known order, and checks grants come back in exactly that order.
func TestPoolFIFOWithinClass(t *testing.T) {
	p, _ := NewPool(1, 1)
	l := p.Lease("t", 1)
	head, err := l.Acquire(context.Background(), "map")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	order := make(chan int, n)
	ready := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize queue entry so arrival order is deterministic.
			<-ready
			release, err := l.Acquire(context.Background(), "map")
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			release()
		}(i)
		ready <- struct{}{}
		// Wait until waiter i is actually queued before admitting i+1.
		deadline := time.Now().Add(5 * time.Second)
		for {
			stats, _ := p.Stats()
			if stats["map"].Waiting == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	head()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order broke FIFO: got waiter %d, want %d", got, want)
		}
		want++
	}
}

// TestPoolWeightedFairShare queues two tenants of weight 1 and 2 behind a
// saturated pool and counts grants over a fixed number of slot cycles: the
// weight-2 tenant must receive about twice as many.
func TestPoolWeightedFairShare(t *testing.T) {
	p, _ := NewPool(6, 1)
	light := p.Lease("light", 1)
	heavy := p.Lease("heavy", 2)

	const perTenant = 120
	counts := map[string]*int{"light": new(int), "heavy": new(int)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	run := func(name string, l *Lease) {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				release, err := l.Acquire(context.Background(), "map")
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				*counts[name]++
				mu.Unlock()
				time.Sleep(200 * time.Microsecond)
				release()
			}()
		}
	}
	run("light", light)
	run("heavy", heavy)
	wg.Wait()

	// Both drain fully; fairness shows in the *rate* while both queues are
	// non-empty. Re-run a contended sample: saturate, queue both, measure
	// the first 30 grants.
	var hold []func()
	for i := 0; i < 6; i++ {
		r, _ := light.Acquire(context.Background(), "map")
		hold = append(hold, r)
	}
	grants := make(chan string, 60)
	for i := 0; i < 30; i++ {
		for name, l := range map[string]*Lease{"light": light, "heavy": heavy} {
			wg.Add(1)
			go func(name string, l *Lease) {
				defer wg.Done()
				release, err := l.Acquire(context.Background(), "map")
				if err != nil {
					t.Error(err)
					return
				}
				grants <- name
				time.Sleep(time.Millisecond)
				release()
			}(name, l)
		}
	}
	// Let every waiter queue before opening the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, _ := p.Stats()
		if stats["map"].Waiting == 60 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	for _, r := range hold {
		r()
	}
	wg.Wait()
	close(grants)
	sample := map[string]int{}
	seen := 0
	for name := range grants {
		if seen < 30 {
			sample[name]++
		}
		seen++
	}
	if sample["heavy"] <= sample["light"] {
		t.Errorf("weighted fair share inverted: heavy=%d light=%d over first 30 contended grants",
			sample["heavy"], sample["light"])
	}
}

func TestPoolAcquireCancelled(t *testing.T) {
	p, _ := NewPool(1, 1)
	l := p.Lease("t", 1)
	release, err := l.Acquire(context.Background(), "map")
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("query deadline")
	ctx, cancel := context.WithCancelCause(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, "map")
		errCh <- err
	}()
	// Wait for the waiter to queue, then kill its context.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, _ := p.Stats()
		if stats["map"].Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(50 * time.Microsecond)
	}
	cancel(cause)
	if err := <-errCh; !errors.Is(err, cause) {
		t.Fatalf("cancelled Acquire = %v, want cause %v", err, cause)
	}
	stats, _ := p.Stats()
	if stats["map"].Waiting != 0 {
		t.Errorf("waiting = %d after cancelled waiter removed, want 0", stats["map"].Waiting)
	}
	release()
	// The slot must still be grantable (no leak through the cancel path).
	r2, err := l.Acquire(context.Background(), "map")
	if err != nil {
		t.Fatal(err)
	}
	r2()
}

// TestPoolGrantCancelRace drives the grant/cancel race many times: a
// waiter whose context dies at the same moment a slot frees must either get
// a clean error or transparently return the raced grant — never leak it.
func TestPoolGrantCancelRace(t *testing.T) {
	p, _ := NewPool(1, 1)
	l := p.Lease("t", 1)
	for i := 0; i < 200; i++ {
		release, err := l.Acquire(context.Background(), "map")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			if r, err := l.Acquire(ctx, "map"); err == nil {
				r()
			}
		}()
		go cancel()
		release()
		<-done
	}
	stats, _ := p.Stats()
	if got := stats["map"]; got.InUse != 0 || got.Waiting != 0 {
		t.Fatalf("after race loop: in_use=%d waiting=%d, want 0/0", got.InUse, got.Waiting)
	}
	r, err := l.Acquire(context.Background(), "map")
	if err != nil {
		t.Fatalf("slot leaked by grant/cancel race: %v", err)
	}
	r()
}

func TestPoolKindsAreIndependent(t *testing.T) {
	p, _ := NewPool(1, 1)
	l := p.Lease("t", 1)
	rm, err := l.Acquire(context.Background(), "map")
	if err != nil {
		t.Fatal(err)
	}
	// A saturated map pool must not block reduce acquisition.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rr, err := l.Acquire(ctx, "reduce")
	if err != nil {
		t.Fatalf("reduce Acquire blocked by map saturation: %v", err)
	}
	rr()
	rm()
}

func TestLeaseSharingAndDefaults(t *testing.T) {
	p, _ := NewPool(2, 2)
	a := p.Lease("", 0)  // "" → "default", weight 0 → 1
	b := p.Lease("", 99) // same tenant: first lease fixed the class
	if a.c != b.c {
		t.Error("leases of one tenant got distinct scheduling classes")
	}
	if a.c.weight != 1 {
		t.Errorf("default weight = %d, want 1", a.c.weight)
	}
	if fmt.Sprint(a.c.name) != "default" {
		t.Errorf("empty tenant mapped to %q, want \"default\"", a.c.name)
	}
}
