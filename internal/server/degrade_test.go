package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ntga/internal/enginetest"
)

// A distributed server that loses its master must degrade in a typed,
// observable way: Evaluate returns ErrUnavailable, HTTP serves 503 with a
// Retry-After hint, the HTTP client rebuilds the typed error from the
// status, and /healthz walks the ladder to "down".
func TestMasterLossServes503AndHealthDown(t *testing.T) {
	g := enginetest.BioGraph()
	m, _, cc := startServerCluster(t, g)
	dist := newTestServer(t, Config{Reducers: 4, Cluster: cc})

	ctx := context.Background()
	req := Request{Query: twoStarQuery, Engine: "ntga-lazy", NoCache: true}
	if _, err := dist.Evaluate(ctx, req); err != nil {
		t.Fatalf("evaluate with a live cluster: %v", err)
	}

	ts := httptest.NewServer(dist.Handler())
	defer ts.Close()
	hc := NewClient(ts.URL)
	if h, err := hc.Health(ctx); err != nil || h.Status != HealthOK {
		t.Fatalf("pre-loss health = %+v, %v", h, err)
	}

	// Kill the master. Close severs accepted connections too, so the loss is
	// process-death realistic: no surviving pipe keeps answering.
	m.Close()

	// The in-process API must fail typed: the 503 family, not a generic 500.
	_, err := dist.Evaluate(ctx, req)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("evaluate after master loss: err = %v, want ErrUnavailable", err)
	}

	// Over raw HTTP: 503 with the shared table's Retry-After hint.
	body, _ := json.Marshal(req)
	hresp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", hresp.StatusCode)
	}
	if ra := hresp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want %q", ra, "2")
	}

	// The HTTP client must rebuild the typed error from the status, so
	// errors.Is works identically against local and remote servers.
	if _, err := hc.Query(ctx, req); !errors.Is(err, ErrUnavailable) {
		t.Errorf("client query after master loss: err = %v, want ErrUnavailable", err)
	}

	// The failed evaluates and healthz's own scrape both feed the ladder:
	// it must read "down" with at least one recorded transition.
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Health returns both the body and a non-nil "unhealthy" error when
		// the ladder is off ok; the body is what the probe asserts on.
		h, herr := hc.Health(ctx)
		if h != nil && h.Status == HealthDown {
			if herr == nil {
				t.Error("client Health returned nil error for a down service")
			}
			if h.HealthTransitions == 0 {
				t.Error("health transitions = 0 after ok -> down")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never reached down: %+v, %v", h, herr)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// With LocalFallback armed, losing the master must not lose the query: the
// in-process engine serves byte-identical rows, the response is marked, the
// fallback counter moves, and the degraded path leaks neither temp files
// nor goroutines.
func TestLocalFallbackServesIdenticalRows(t *testing.T) {
	g := enginetest.BioGraph()
	m, _, cc := startServerCluster(t, g)
	local := newTestServer(t, Config{Reducers: 4})
	dist := newTestServer(t, Config{Reducers: 4, Cluster: cc, LocalFallback: true})

	ctx := context.Background()
	req := Request{Query: twoStarQuery, Engine: "ntga-lazy", NoCache: true}
	lresp, err := local.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := dist.Evaluate(ctx, req)
	if err != nil {
		t.Fatalf("distributed evaluate: %v", err)
	}
	if dresp.Fallback {
		t.Error("healthy cluster evaluate marked Fallback")
	}

	m.Close()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	fresp, err := dist.Evaluate(ctx, req)
	if err != nil {
		t.Fatalf("fallback evaluate: %v", err)
	}
	if !fresp.Fallback {
		t.Error("fallback response not marked Fallback")
	}
	if !reflect.DeepEqual(lresp.Header, fresp.Header) || !reflect.DeepEqual(lresp.Rows, fresp.Rows) {
		t.Errorf("fallback rows diverge from local:\nlocal    %v %v\nfallback %v %v",
			lresp.Header, lresp.Rows, fresp.Header, fresp.Rows)
	}
	if lresp.TotalRows != fresp.TotalRows {
		t.Errorf("fallback total rows = %d, want %d", fresp.TotalRows, lresp.TotalRows)
	}
	if fresp.Cycles == 0 {
		t.Error("fallback ran zero MR cycles; it should have executed locally")
	}

	snap := dist.Snapshot()
	if snap.Cluster.LocalFallbacks < 1 {
		t.Errorf("LocalFallbacks = %d, want >= 1", snap.Cluster.LocalFallbacks)
	}
	if snap.Cluster.Health != HealthDown {
		t.Errorf("cluster health = %q, want %q", snap.Cluster.Health, HealthDown)
	}
	if snap.TempFiles != 0 {
		t.Errorf("%d temp files remain after fallback, want 0", snap.TempFiles)
	}

	// The degraded path must wind down cleanly: no stray task or retry
	// goroutines survive the fallback run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The result cache was populated by the fallback run: cached answers
	// keep flowing without touching the dead cluster.
	hit, err := dist.Evaluate(ctx, Request{Query: twoStarQuery, Engine: "ntga-lazy"})
	if err != nil || hit.Cache != "hit" {
		t.Fatalf("post-fallback cached evaluate = (%+v, %v), want hit", hit, err)
	}
}
