package server

import (
	"sync"
	"time"
)

// The cluster health ladder. A distributed server is "ok" while the master
// answers and every registered worker is alive, "degraded" while the master
// answers but the fleet is impaired (workers dead, or none registered), and
// "down" while the master itself is unreachable — the state in which
// queries can only 503 or fall back to local execution. A local-mode server
// is always "ok": its substrate is this process.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthDown     = "down"
)

// healthOf classifies one substrate scrape onto the ladder.
func healthOf(cm ClusterMetrics) string {
	if cm.Mode != "distributed" {
		return HealthOK
	}
	switch {
	case cm.Error != "":
		return HealthDown
	case cm.WorkersAlive == 0 || cm.WorkersAlive < cm.WorkersRegistered:
		return HealthDegraded
	default:
		return HealthOK
	}
}

// healthTracker is the server's persistent position on the ladder, fed by
// every substrate probe — the periodic prober when armed, on-demand
// /healthz and /metrics scrapes, and direct in-band evidence (a query that
// lost the master observes "down" without waiting for the next probe).
type healthTracker struct {
	mu          sync.Mutex
	state       string
	since       time.Time
	transitions int64
}

func newHealthTracker() *healthTracker {
	return &healthTracker{state: HealthOK, since: time.Now()}
}

// observe moves the tracker to state, timestamping the transition.
func (t *healthTracker) observe(state string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if state != t.state {
		t.state = state
		t.since = time.Now()
		t.transitions++
	}
}

// snapshot reports the current state, how long it has held, and how many
// transitions the ladder has seen.
func (t *healthTracker) snapshot() (state string, held time.Duration, transitions int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state, time.Since(t.since), t.transitions
}
