package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig enables the p95-adaptive admission controller. Instead
// of the fixed MaxInflight+MaxQueue window, the server sheds against a
// moving window steered by the measured queue wait (admission → execution
// token acquire): when the p95 queue wait of the last SampleWindow
// executed requests exceeds the target, the window shrinks (shedding
// earlier keeps the admitted requests' tails short); when it runs below
// target, the window grows back toward the ceiling. A nil AdmissionConfig
// in Config keeps the fixed window byte-identical to previous behavior.
type AdmissionConfig struct {
	// TargetQueueWait is the queue-wait p95 the controller steers to
	// (required, > 0).
	TargetQueueWait time.Duration
	// MinWindow clamps the window's floor (default 1 — at least one
	// request is always admitted; the controller can never wedge the
	// service shut).
	MinWindow int
	// MaxWindow clamps the ceiling (default MaxInflight+MaxQueue).
	MaxWindow int
	// SampleWindow is how many queue-wait samples feed one gradient step
	// (default 32).
	SampleWindow int
	// Gain scales each multiplicative step (default 0.25; clamped steps
	// keep a wild p95 sample from collapsing or exploding the window).
	Gain float64
}

// admissionController is the runtime state: a clamped multiplicative
// gradient on the window size, driven by the p95 of a sliding queue-wait
// sample buffer. Limit() is lock-free on the admission fast path.
type admissionController struct {
	target float64 // seconds
	floor  float64
	ceil   float64
	gain   float64
	sample int

	limit atomic.Int64 // rounded window admit() checks

	mu      sync.Mutex
	flimit  float64 // fractional window the gradient walks
	waits   []float64
	n       int
	adjusts int64
	lastP95 float64
}

// newAdmissionController validates the config and seeds the window at the
// ceiling (full admission until measurements say otherwise).
func newAdmissionController(cfg AdmissionConfig, defaultCeil int) (*admissionController, error) {
	if cfg.TargetQueueWait <= 0 {
		return nil, fmt.Errorf("server: admission TargetQueueWait must be positive (got %v)", cfg.TargetQueueWait)
	}
	floor := cfg.MinWindow
	if floor <= 0 {
		floor = 1
	}
	ceil := cfg.MaxWindow
	if ceil <= 0 {
		ceil = defaultCeil
	}
	if ceil < floor {
		return nil, fmt.Errorf("server: admission MaxWindow %d below MinWindow %d", ceil, floor)
	}
	sample := cfg.SampleWindow
	if sample <= 0 {
		sample = 32
	}
	gain := cfg.Gain
	if gain <= 0 {
		gain = 0.25
	}
	c := &admissionController{
		target: cfg.TargetQueueWait.Seconds(),
		floor:  float64(floor),
		ceil:   float64(ceil),
		gain:   gain,
		sample: sample,
		flimit: float64(ceil),
		waits:  make([]float64, 0, sample),
	}
	c.limit.Store(int64(ceil))
	return c, nil
}

// Limit is the current admission window (always >= 1).
func (c *admissionController) Limit() int64 { return c.limit.Load() }

// Observe feeds one measured queue wait; every SampleWindow samples the
// controller takes a gradient step on the window.
func (c *admissionController) Observe(wait time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waits = append(c.waits, wait.Seconds())
	c.n++
	if len(c.waits) < c.sample {
		return
	}
	p95 := p95Of(c.waits)
	c.waits = c.waits[:0]
	c.lastP95 = p95

	// Relative error of the measured p95 vs the target, clamped to one
	// gain-step in either direction so a single pathological window of
	// samples cannot slam the limit to an extreme.
	errFrac := (c.target - p95) / c.target
	if errFrac > 1 {
		errFrac = 1
	}
	if errFrac < -1 {
		errFrac = -1
	}
	c.flimit *= 1 + c.gain*errFrac
	if c.flimit < c.floor {
		c.flimit = c.floor
	}
	if c.flimit > c.ceil {
		c.flimit = c.ceil
	}
	c.adjusts++
	c.limit.Store(int64(c.flimit + 0.5))
}

// stats snapshots the controller for /metrics.
func (c *admissionController) stats() (limit int64, adjusts int64, lastP95 time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit.Load(), c.adjusts, time.Duration(c.lastP95 * float64(time.Second))
}

// p95Of is the nearest-rank 95th percentile of an unsorted sample buffer
// (the buffer is consumed afterwards, so sorting in place is fine).
func p95Of(xs []float64) float64 {
	sort.Float64s(xs)
	rank := int(float64(len(xs))*0.95+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(xs) {
		rank = len(xs) - 1
	}
	return xs[rank]
}

// --- per-tenant queue-wait accounting (/metrics) ---

// queueWaitRing keeps the most recent queue waits per tenant so /metrics
// can report a p95 without unbounded memory.
const queueWaitRing = 256

// tenantWait accumulates one tenant's queue-wait measurements.
type tenantWait struct {
	count   int64
	totalNS int64
	maxNS   int64
	ring    []float64 // ns, most recent queueWaitRing samples
	next    int
}

// queueWaits tracks admission→token queue waits per tenant.
type queueWaits struct {
	mu sync.Mutex
	by map[string]*tenantWait
}

func newQueueWaits() *queueWaits { return &queueWaits{by: make(map[string]*tenantWait)} }

func (q *queueWaits) observe(tenant string, wait time.Duration) {
	if tenant == "" {
		tenant = "default"
	}
	ns := wait.Nanoseconds()
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.by[tenant]
	if t == nil {
		t = &tenantWait{}
		q.by[tenant] = t
	}
	t.count++
	t.totalNS += ns
	if ns > t.maxNS {
		t.maxNS = ns
	}
	if len(t.ring) < queueWaitRing {
		t.ring = append(t.ring, float64(ns))
	} else {
		t.ring[t.next] = float64(ns)
		t.next = (t.next + 1) % queueWaitRing
	}
}

// QueueWaitStats is one tenant's /metrics view of the time its requests
// spent between admission and acquiring an execution token.
type QueueWaitStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
	// P95MS is computed over the most recent 256 samples.
	P95MS float64 `json:"p95_ms"`
}

func (q *queueWaits) snapshot() map[string]QueueWaitStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]QueueWaitStats, len(q.by))
	for tenant, t := range q.by {
		s := QueueWaitStats{
			Count: t.count,
			MaxMS: float64(t.maxNS) / 1e6,
		}
		if t.count > 0 {
			s.MeanMS = float64(t.totalNS) / float64(t.count) / 1e6
		}
		if len(t.ring) > 0 {
			buf := append([]float64(nil), t.ring...)
			s.P95MS = p95Of(buf) / 1e6
		}
		out[tenant] = s
	}
	return out
}
