package server

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"ntga/internal/query"
	"ntga/internal/rdf"
)

// fingerprint hashes an ordered list of identity parts to a short stable
// token (fnv64a — the same generator the chaos machinery uses). Cache keys
// are built from these, never from pointer identity.
func fingerprint(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s|", len(p), p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// queryFingerprint canonicalizes a compiled query: the deterministic
// Explain rendering covers the stars, slots, and compile-order joins (all
// in dictionary-ID space, so it is only meaningful against one loaded
// dataset), and the projection/DISTINCT/COUNT clauses are appended since
// Explain omits them. Computed before the optimizer touches the join
// order, so the same source query always maps to the same plan-cache key.
func queryFingerprint(q *query.Query) string {
	return fingerprint(
		q.Explain(),
		strings.Join(q.Select, ","),
		fmt.Sprintf("distinct=%v count=%v countvar=%s", q.Distinct, q.IsCount(), q.Src.CountVar),
	)
}

// planEntry is the cached optimizer output for one (query, catalog)
// pairing: the concrete engine choice and the catalog-chosen join order —
// everything needed to rebuild the physical plan without re-running the
// cost model. The executable plan itself is NOT cached: prebuilt plans
// embed unique temp file names, so sharing one across concurrent requests
// would collide; replaying the join order onto a freshly compiled query is
// cheap and safe.
type planEntry struct {
	EngineName string // resolved engine (never "auto")
	PhiM       int
	Order      []int // star visit order chosen by the optimizer
	Changed    bool  // whether Order differs from compile order
	EstShuffle int64 // optimizer's estimated join-chain shuffle bytes
}

// planCache maps (query fingerprint, requested engine, catalog version) to
// optimizer decisions. Entries are only valid for one catalog version, so
// the version lives in the key: reloading data invalidates by key miss,
// and stale entries are harmlessly unreachable.
type planCache struct {
	mu           sync.Mutex
	entries      map[string]planEntry
	hits, misses int64
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]planEntry)}
}

func (c *planCache) get(key string) (planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

func (c *planCache) put(key string, e planEntry) {
	c.mu.Lock()
	c.entries[key] = e
	c.mu.Unlock()
}

func (c *planCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// resultEntry is one cached query answer, stored fully rendered: the
// projected, formatted row strings and header are computed exactly once
// when the entry is built (newResultEntry), so a cache hit is zero-copy —
// the response slices the stored strings without re-projecting or
// re-formatting anything. The scalar COUNT(*) answer and the output-shape
// stats ride along; engine identity says who computed it. Entries are
// immutable after construction — hit responses alias their slices.
type resultEntry struct {
	engine     string
	isCount    bool
	count      int64
	outRecords int64
	outBytes   int64
	header     []string
	rendered   []string // all projected rows, formatted; nil for counts
	totalRows  int
}

// newResultEntry renders an execution result into its immutable cached
// form. Rendering happens here — once per result — never on the hit path.
func newResultEntry(q *query.Query, engine string, rows []query.Row, isCount bool, count, outRecords, outBytes int64) resultEntry {
	e := resultEntry{
		engine:     engine,
		isCount:    isCount,
		count:      count,
		outRecords: outRecords,
		outBytes:   outBytes,
	}
	if isCount {
		e.header = []string{"?" + q.Src.CountVar}
		return e
	}
	projected := q.ProjectAll(rows)
	e.totalRows = len(projected)
	e.header = make([]string, len(q.Select))
	for i, v := range q.Select {
		e.header[i] = "?" + v
	}
	e.rendered = make([]string, len(projected))
	for i, r := range projected {
		e.rendered[i] = q.FormatRow(r)
	}
	return e
}

// resultCache is a plain LRU over plan-fingerprint × dataset-version keys.
// The dataset version is part of the key, so loading different data can
// never serve stale rows; capacity bounds memory, with eviction from the
// cold end.
type resultCache struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List // front = most recent
	byKey        map[string]*list.Element
	hits, misses int64
}

type resultNode struct {
	key   string
	entry resultEntry
	id    cacheIdentity
}

// cacheIdentity is everything needed to re-derive a result's cache key
// under new catalog/dataset versions, plus the compiled query the
// delta-affectedness predicate runs against. The key derivation mirrors
// evaluate exactly: planKey = fp(qfp, engine, phiM, catalogVersion),
// resultKey = fp(planKey, datasetVersion). engine is the *requested* name
// (possibly "auto"), phiM the requested range — both as they entered the
// plan key, not as the planner resolved them.
type cacheIdentity struct {
	q      *query.Query
	qfp    string
	engine string
	phiM   string
}

// affected reports whether any delta triple could participate in some star
// of the cached query — the sound retention test for append-only ingest:
// every result row derives from star matches, so a batch in which no triple
// can join any star cannot change the result. Queries that compiled against
// missing terms (Empty) are always affected: an ingest may have minted
// exactly the term whose absence made them empty, and TripleRelevant cannot
// see that through the stale NoID in the compiled form.
func (id cacheIdentity) affected(deltas []rdf.Triple) bool {
	if id.q == nil || id.q.Empty() {
		return true
	}
	for _, t := range deltas {
		if id.q.TripleRelevant(t) {
			return true
		}
	}
	return false
}

// newResultCache returns nil for capacity <= 0 (cache disabled); a nil
// *resultCache is safe to call.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{capacity: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (resultEntry, bool) {
	if c == nil {
		return resultEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return resultEntry{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*resultNode).entry, true
}

func (c *resultCache) put(key string, e resultEntry, id cacheIdentity) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		n := el.Value.(*resultNode)
		n.entry = e
		n.id = id
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&resultNode{key: key, entry: e, id: id})
	for c.ll.Len() > c.capacity {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.byKey, cold.Value.(*resultNode).key)
	}
}

// maintain walks the cache after an accepted ingest batch instead of
// flushing it: entries whose query could match some delta triple are
// evicted (their rows may have changed), everything else is re-keyed to the
// new catalog and dataset versions so the very next identical request hits
// without a single MR cycle. Returns the retained/evicted split for the
// ingest response and /metrics.
func (c *resultCache) maintain(deltas []rdf.Triple, catVer, dataVer string) (retained, evicted int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		n := el.Value.(*resultNode)
		if n.id.affected(deltas) {
			c.ll.Remove(el)
			delete(c.byKey, n.key)
			evicted++
			continue
		}
		newKey := fingerprint(fingerprint(n.id.qfp, n.id.engine, n.id.phiM, catVer), dataVer)
		delete(c.byKey, n.key)
		n.key = newKey
		c.byKey[newKey] = el
		retained++
	}
	return retained, evicted
}

func (c *resultCache) stats() (hits, misses int64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
