package server

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
)

// IngestResult is the POST /ingest reply body: what the batch did to the
// dataset, the versions the caller should expect subsequent queries to be
// keyed under, and the result-cache maintenance split.
type IngestResult struct {
	// Triples accepted from the batch (0 for a comment-only batch, which is
	// a no-op success).
	Triples int `json:"triples"`
	// Seq is the manifest sequence after the ingest; Block the appended
	// delta block's DFS name (empty for a no-op batch).
	Seq   int    `json:"seq"`
	Block string `json:"block,omitempty"`
	// DatasetVersion / CatalogVersion after the ingest.
	DatasetVersion string `json:"dataset_version"`
	CatalogVersion string `json:"catalog_version"`
	// DeltaBlocks is the uncompacted chain length after the ingest (and
	// after any auto-compaction).
	DeltaBlocks int `json:"delta_blocks"`
	// CacheRetained / CacheEvicted is this batch's result-cache maintenance
	// split: retained entries were re-keyed to the new versions and keep
	// serving with zero MR cycles.
	CacheRetained int `json:"cache_retained"`
	CacheEvicted  int `json:"cache_evicted"`
	// Compacted reports that Config.CompactAfter triggered a delta-merge
	// compaction at the end of this ingest; BucketsRewritten counts
	// partition-layout buckets it rebuilt.
	Compacted        bool `json:"compacted,omitempty"`
	BucketsRewritten int  `json:"buckets_rewritten,omitempty"`
}

// Ingest accepts one N-Triples batch: validates it (all-or-nothing),
// appends it as an immutable delta block under the versioned manifest,
// folds the batch into the mergeable catalog state (no rescan), moves the
// dataset view queries snapshot, and maintains the result cache — evicting
// only entries whose query could match a batch triple and re-keying the
// rest to the new versions. In distributed mode the raw batch is forwarded
// to the master first and applied locally in lockstep; deterministic
// first-occurrence interning makes both sides mint identical IDs and
// versions, which Ingest asserts.
func (s *Server) Ingest(ctx context.Context, r io.Reader) (*IngestResult, error) {
	batch, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading batch: %v", ingest.ErrBadBatch, err)
	}
	if _, err := ingest.ValidateBatch(bytes.NewReader(batch)); err != nil {
		return nil, err
	}

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	// Master first: if the fleet refuses the batch, the local store never
	// moves and the two stay in lockstep.
	var masterVer string
	if s.cfg.Cluster != nil {
		reply, err := s.cfg.Cluster.Ingest(ctx, batch)
		if err != nil {
			return nil, err
		}
		masterVer = reply.DatasetVersion
	}

	res, err := s.store.Ingest(bytes.NewReader(batch))
	if err != nil {
		return nil, err
	}
	out := &IngestResult{Triples: len(res.Triples), Seq: res.Seq, Block: res.Block.File}
	if len(res.Triples) == 0 {
		s.dsMu.RLock()
		out.DatasetVersion = s.datasetVersion
		out.CatalogVersion = s.catalogVersion
		out.DeltaBlocks = len(s.deltas)
		s.dsMu.RUnlock()
		return out, nil
	}
	if masterVer != "" && masterVer != res.Version {
		return nil, fmt.Errorf("server: ingest split brain: master moved to dataset %s but local store to %s", masterVer, res.Version)
	}

	// Incremental catalog maintenance: fold the batch into the mergeable
	// state and re-derive the exact catalog — no rescan of the base.
	for _, t := range res.Triples {
		s.catState.AddTriple(s.dict, t)
	}
	newCat := s.catState.Catalog()
	newCatVer, err := catalogVersion(newCat)
	if err != nil {
		// Refuse to move the served view forward under an unversionable
		// catalog: both caches key on the version, so serving without one
		// could collide distinct catalogs on one key.
		return nil, err
	}

	s.dsMu.Lock()
	s.catalog = newCat
	s.catalogVersion = newCatVer
	s.datasetVersion = res.Version
	s.triples += int64(len(res.Triples))
	s.deltas = s.store.DeltaFiles()
	s.dsMu.Unlock()

	retained, evicted := s.results.maintain(res.Triples, newCatVer, res.Version)
	s.mIngests.Add(1)
	s.mIngestTriples.Add(int64(len(res.Triples)))
	s.mCacheRetained.Add(int64(retained))
	s.mCacheEvicted.Add(int64(evicted))
	out.DatasetVersion = res.Version
	out.CatalogVersion = newCatVer
	out.DeltaBlocks = len(s.store.DeltaFiles())
	out.CacheRetained = retained
	out.CacheEvicted = evicted

	if s.cfg.CompactAfter > 0 && out.DeltaBlocks >= s.cfg.CompactAfter {
		cres, err := s.compactLocked(ctx)
		if err != nil {
			return nil, fmt.Errorf("server: auto-compaction after ingest: %w", err)
		}
		out.Compacted = true
		out.BucketsRewritten = cres.BucketsRewritten
		out.DeltaBlocks = 0
	}
	return out, nil
}

// Compact folds the whole delta chain into a fresh base-relation generation
// (the delta-merge MR job) and points the served dataset view at it. The
// content — and therefore the dataset version and every cache key — is
// unchanged; old-generation files are retained so queries pinned to the
// pre-compaction snapshot finish unharmed. An empty chain is a no-op.
func (s *Server) Compact(ctx context.Context) (*ingest.CompactResult, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	return s.compactLocked(ctx)
}

func (s *Server) compactLocked(ctx context.Context) (*ingest.CompactResult, error) {
	if s.cfg.Cluster != nil {
		if _, err := s.cfg.Cluster.Compact(ctx); err != nil {
			return nil, err
		}
	}
	mr := mapreduce.NewEngine(s.dfs, mapreduce.EngineConfig{
		DefaultReducers: s.cfg.Reducers,
		SplitRecords:    s.cfg.SplitRecords,
		SortBufferBytes: s.cfg.SortBufferBytes,
		Slots:           s.pool.Lease("ingest", 1),
		Tracer:          s.cfg.Tracer,
	}).WithContext(ctx)
	// Prune stays off: in-flight queries hold pre-compaction file names, and
	// every retained file is immutable — their snapshots stay consistent
	// without any locking against the serve path.
	res, err := s.store.Compact(mr, ingest.CompactOptions{})
	if err != nil {
		return nil, err
	}
	s.dsMu.Lock()
	s.input = s.store.Base()
	s.deltas = nil
	s.dsMu.Unlock()
	s.mCompactions.Add(1)
	return res, nil
}
