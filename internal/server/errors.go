package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"ntga/internal/ingest"
)

// StatusClientClosedRequest is the nginx convention for "the client went
// away before the response": context.Canceled maps here.
const StatusClientClosedRequest = 499

// ErrUnavailable is the serve-path face of a lost distributed substrate:
// the master (or its fleet) is unreachable, so the query could not run —
// but the condition is environmental and retryable, not the query's fault.
// The HTTP layer maps it to 503 with a Retry-After; it wraps
// mapreduce.ErrClusterUnavailable's family (cluster.ErrMasterLost) at the
// evaluate seam.
var ErrUnavailable = errors.New("server: cluster unavailable")

// errorStatuses is the single typed-error ↔ HTTP status table both sides of
// the wire share: the handler walks it to pick a status code (and a
// Retry-After hint for the retryable ones), and the client walks it
// backwards to rebuild a typed error, so errors.Is works identically
// against a local Server and a remote one. Order matters only for errors
// that wrap each other; first match wins.
var errorStatuses = []struct {
	err  error
	code int
	// retryAfter, in seconds, is sent as the Retry-After header when > 0 —
	// the statuses that mean "the service is fine, just not right now".
	retryAfter int
}{
	{ErrOverloaded, http.StatusTooManyRequests, 1},
	{ErrBadQuery, http.StatusBadRequest, 0},
	{ingest.ErrBadBatch, http.StatusUnprocessableEntity, 0},
	{ErrUnavailable, http.StatusServiceUnavailable, 2},
	{context.DeadlineExceeded, http.StatusGatewayTimeout, 0},
	{context.Canceled, StatusClientClosedRequest, 0},
}

// statusForError maps an Evaluate/Submit error to its HTTP status.
func statusForError(err error) int {
	for _, e := range errorStatuses {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return http.StatusInternalServerError
}

// retryAfterSeconds reports the Retry-After hint for a status (0 = none).
func retryAfterSeconds(code int) int {
	for _, e := range errorStatuses {
		if e.code == code {
			return e.retryAfter
		}
	}
	return 0
}

// errorForStatus rebuilds the typed error a status code stands for, keeping
// the server's message. Unmapped codes yield a plain error.
func errorForStatus(code int, msg string) error {
	for _, e := range errorStatuses {
		if e.code == code {
			return fmt.Errorf("%w: %s (HTTP %d)", e.err, msg, code)
		}
	}
	return fmt.Errorf("server: %s (HTTP %d)", msg, code)
}
