package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// StatusClientClosedRequest is the nginx convention for "the client went
// away before the response": context.Canceled maps here.
const StatusClientClosedRequest = 499

// errorStatuses is the single typed-error ↔ HTTP status table both sides of
// the wire share: the handler walks it to pick a status code, and the
// client walks it backwards to rebuild a typed error, so errors.Is works
// identically against a local Server and a remote one. Order matters only
// for errors that wrap each other; first match wins.
var errorStatuses = []struct {
	err  error
	code int
}{
	{ErrOverloaded, http.StatusTooManyRequests},
	{ErrBadQuery, http.StatusBadRequest},
	{context.DeadlineExceeded, http.StatusGatewayTimeout},
	{context.Canceled, StatusClientClosedRequest},
}

// statusForError maps an Evaluate/Submit error to its HTTP status.
func statusForError(err error) int {
	for _, e := range errorStatuses {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return http.StatusInternalServerError
}

// errorForStatus rebuilds the typed error a status code stands for, keeping
// the server's message. Unmapped codes yield a plain error.
func errorForStatus(code int, msg string) error {
	for _, e := range errorStatuses {
		if e.code == code {
			return fmt.Errorf("%w: %s (HTTP %d)", e.err, msg, code)
		}
	}
	return fmt.Errorf("server: %s (HTTP %d)", msg, code)
}
