package server

import (
	"fmt"
	"testing"
)

func TestFingerprintDistinguishesBoundaries(t *testing.T) {
	if fingerprint("ab", "c") == fingerprint("a", "bc") {
		t.Error("fingerprint ignores part boundaries")
	}
	if fingerprint("x") != fingerprint("x") {
		t.Error("fingerprint unstable")
	}
	if fingerprint() == fingerprint("") {
		t.Error("zero parts collides with one empty part")
	}
}

func TestPlanCacheStats(t *testing.T) {
	c := newPlanCache()
	if _, ok := c.get("k"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("k", planEntry{EngineName: "ntga-lazy", Order: []int{1, 0}})
	e, ok := c.get("k")
	if !ok || e.EngineName != "ntga-lazy" || len(e.Order) != 2 {
		t.Fatalf("get = %+v, %v", e, ok)
	}
	hits, misses, size := c.stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("stats = (%d, %d, %d), want (1, 1, 1)", hits, misses, size)
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), resultEntry{count: int64(i)}, cacheIdentity{})
	}
	// Touch k0 so k1 is now the cold end, then overflow.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", resultEntry{count: 3}, cacheIdentity{})
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction, want LRU out")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if _, _, size := c.stats(); size != 3 {
		t.Errorf("size = %d, want 3", size)
	}
}

func TestResultCachePutExistingRefreshes(t *testing.T) {
	c := newResultCache(2)
	c.put("a", resultEntry{count: 1}, cacheIdentity{})
	c.put("b", resultEntry{count: 2}, cacheIdentity{})
	c.put("a", resultEntry{count: 10}, cacheIdentity{}) // update + move to front
	c.put("c", resultEntry{count: 3}, cacheIdentity{})  // evicts b, not a
	if e, ok := c.get("a"); !ok || e.count != 10 {
		t.Errorf("a = (%+v, %v), want updated entry kept", e, ok)
	}
	if _, ok := c.get("b"); ok {
		t.Error("b survived, want evicted as LRU")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	if c := newResultCache(0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	var c *resultCache // nil receiver must be safe
	if _, ok := c.get("k"); ok {
		t.Error("nil cache hit")
	}
	c.put("k", resultEntry{}, cacheIdentity{})
	if h, m, s := c.stats(); h != 0 || m != 0 || s != 0 {
		t.Errorf("nil cache stats = (%d, %d, %d)", h, m, s)
	}
}
