package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"ntga/internal/ingest"
)

// Client is the HTTP client for a running ntga-serve daemon; ntga-run's
// -server mode and the smoke tests go through it.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7457".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient normalizes addr ("host:port" or a full URL) into a client.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{BaseURL: strings.TrimRight(addr, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Query evaluates a request synchronously on the server.
func (c *Client) Query(ctx context.Context, req Request) (*Response, error) {
	var resp Response
	if err := c.post(ctx, "/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Submit starts an async query and returns its job ID.
func (c *Client) Submit(ctx context.Context, req Request) (string, error) {
	var out struct {
		JobID string `json:"job_id"`
	}
	if err := c.post(ctx, "/query?async=1", req, &out); err != nil {
		return "", err
	}
	return out.JobID, nil
}

// Job polls an async job.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.get(ctx, "/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches the service metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.get(ctx, "/metrics", &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Ingest posts a raw N-Triples batch to /ingest.
func (c *Client) Ingest(ctx context.Context, batch io.Reader) (*IngestResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/ingest", batch)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/n-triples")
	var res IngestResult
	if err := c.do(req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Compact asks the server to fold its delta chain into a new base
// generation.
func (c *Client) Compact(ctx context.Context) (*ingest.CompactResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/compact", nil)
	if err != nil {
		return nil, err
	}
	var res ingest.CompactResult
	if err := c.do(req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.get(ctx, "/healthz", &h); err != nil {
		return nil, err
	}
	if h.Status != "ok" {
		return &h, fmt.Errorf("server unhealthy: status=%q", h.Status)
	}
	return &h, nil
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			// Rebuild the typed error the status stands for, so errors.Is
			// round-trips through the wire (ErrOverloaded, ErrBadQuery, …).
			return errorForStatus(resp.StatusCode, e.Error)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}
