package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ntga/internal/enginetest"
)

// synthetic feedback model: the queue wait a request sees is proportional
// to the admission window — more admitted requests, longer line. Feeding
// this back into the controller must find the equilibrium window where
// the p95 wait equals the target.
func driveFeedback(c *admissionController, perSlot time.Duration, rounds int) {
	for i := 0; i < rounds; i++ {
		wait := time.Duration(c.Limit()) * perSlot
		c.Observe(wait)
	}
}

func TestAdmissionConvergesToTarget(t *testing.T) {
	const target = 100 * time.Millisecond
	c, err := newAdmissionController(AdmissionConfig{
		TargetQueueWait: target,
		MaxWindow:       64,
		SampleWindow:    16,
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// wait = 10ms per admitted slot ⇒ equilibrium window = 100ms/10ms = 10.
	driveFeedback(c, 10*time.Millisecond, 16*200)
	got := c.Limit()
	if got < 8 || got > 12 {
		t.Fatalf("window converged to %d, want ≈ 10 (target %v at 10ms/slot)", got, target)
	}
	_, adjusts, lastP95 := c.stats()
	if adjusts == 0 {
		t.Error("controller took no gradient steps")
	}
	// At equilibrium the measured p95 tracks the target.
	if lastP95 < target/2 || lastP95 > target*2 {
		t.Errorf("last p95 = %v, want near target %v", lastP95, target)
	}
}

// TestAdmissionFloor: no latency series, however pathological, may close
// the window below the floor of 1 — the service can always admit one
// request, so it can never wedge itself shut.
func TestAdmissionFloor(t *testing.T) {
	c, err := newAdmissionController(AdmissionConfig{
		TargetQueueWait: time.Millisecond,
		SampleWindow:    8,
	}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8*1000; i++ {
		c.Observe(time.Hour) // absurd overload forever
	}
	if got := c.Limit(); got != 1 {
		t.Fatalf("window under sustained overload = %d, want floor 1", got)
	}
}

// TestAdmissionRecovers: after the overload subsides (queue waits drop
// below target), the window must grow back to the ceiling so shedding
// stops.
func TestAdmissionRecovers(t *testing.T) {
	c, err := newAdmissionController(AdmissionConfig{
		TargetQueueWait: 10 * time.Millisecond,
		SampleWindow:    8,
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8*100; i++ {
		c.Observe(time.Second)
	}
	if got := c.Limit(); got != 1 {
		t.Fatalf("window under overload = %d, want 1", got)
	}
	for i := 0; i < 8*100; i++ {
		c.Observe(time.Microsecond)
	}
	if got := c.Limit(); got != 16 {
		t.Fatalf("window after load subsided = %d, want ceiling 16", got)
	}
}

// TestAdmissionShedRateFalls is the server-level recovery check: with the
// window gradient-driven to the floor, a burst sheds almost everything;
// once measured waits fall and the window reopens, the same burst is
// admitted in full.
func TestAdmissionShedRateFalls(t *testing.T) {
	s := newTestServer(t, Config{
		MaxInflight: 2, MaxQueue: 6,
		Admission: &AdmissionConfig{TargetQueueWait: 5 * time.Millisecond, SampleWindow: 8},
	})
	// Overload: drive the controller to the floor.
	for i := 0; i < 8*50; i++ {
		s.admission.Observe(time.Second)
	}
	if got := s.admission.Limit(); got != 1 {
		t.Fatalf("window = %d, want 1", got)
	}
	hold, err := s.admit()
	if err != nil {
		t.Fatal(err)
	}
	shedBefore := 0
	for i := 0; i < 8; i++ {
		if _, err := s.admit(); errors.Is(err, ErrOverloaded) {
			shedBefore++
		} else {
			t.Fatal("admit succeeded past a window of 1")
		}
	}
	hold()

	// Load subsides: waits collapse, window reopens to the ceiling.
	for i := 0; i < 8*50; i++ {
		s.admission.Observe(time.Microsecond)
	}
	if got := s.admission.Limit(); got != 8 {
		t.Fatalf("recovered window = %d, want 8", got)
	}
	var releases []func()
	shedAfter := 0
	for i := 0; i < 8; i++ {
		release, err := s.admit()
		if errors.Is(err, ErrOverloaded) {
			shedAfter++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}
	for _, r := range releases {
		r()
	}
	if shedAfter != 0 {
		t.Errorf("shed %d/8 after recovery, want 0 (shed %d/8 before)", shedAfter, shedBefore)
	}
	if m := s.Snapshot().Admission; m.Policy != "adaptive" || m.Window != 8 || m.Adjusts == 0 {
		t.Errorf("admission metrics = %+v, want adaptive policy, window 8, adjusts > 0", m)
	}
}

// TestAdmissionNilPathFixedWindow regression-pins the nil-controller path:
// without AdmissionConfig the shed boundary is exactly MaxInflight+MaxQueue
// — same count, same error — and /metrics reports the fixed policy.
func TestAdmissionNilPathFixedWindow(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 2, MaxQueue: 3})
	var releases []func()
	for i := 0; i < 5; i++ {
		release, err := s.admit()
		if err != nil {
			t.Fatalf("admit %d inside fixed window: %v", i, err)
		}
		releases = append(releases, release)
	}
	if _, err := s.admit(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit past fixed window = %v, want ErrOverloaded", err)
	}
	for _, r := range releases {
		r()
	}
	m := s.Snapshot().Admission
	if m.Policy != "fixed" || m.Window != 5 || m.Adjusts != 0 {
		t.Errorf("fixed-window metrics = %+v, want policy=fixed window=5 adjusts=0", m)
	}
}

func TestAdmissionConfigRejected(t *testing.T) {
	for name, cfg := range map[string]AdmissionConfig{
		"zero target":         {},
		"negative target":     {TargetQueueWait: -time.Second},
		"ceiling below floor": {TargetQueueWait: time.Second, MinWindow: 8, MaxWindow: 4},
	} {
		if _, err := newAdmissionController(cfg, 16); err == nil {
			t.Errorf("%s: controller accepted, want error", name)
		}
		cfgCopy := cfg
		if _, err := New(Config{Admission: &cfgCopy}, enginetest.BioGraph()); err == nil {
			t.Errorf("%s: New accepted bad admission config", name)
		}
	}
}

// TestQueueWaitMetricsUnderContention: with a single execution token and
// concurrent cache-bypassing queries from two tenants, /metrics must
// report per-tenant admission→token queue waits, and the queued tenants'
// samples must show real waiting.
func TestQueueWaitMetricsUnderContention(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 16})
	const perTenant = 3
	var wg sync.WaitGroup
	errs := make(chan error, 2*perTenant)
	for _, tenant := range []string{"alpha", "beta"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				if _, err := s.Evaluate(context.Background(), Request{
					Query: twoStarQuery, Tenant: tenant, NoCache: true,
				}); err != nil {
					errs <- fmt.Errorf("tenant %s: %w", tenant, err)
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	qw := s.Snapshot().QueueWait
	var totalMax float64
	for _, tenant := range []string{"alpha", "beta"} {
		st, ok := qw[tenant]
		if !ok {
			t.Fatalf("QueueWait missing tenant %q (have %v)", tenant, qw)
		}
		if st.Count != perTenant {
			t.Errorf("tenant %s queue-wait count = %d, want %d", tenant, st.Count, perTenant)
		}
		if st.MaxMS < st.MeanMS {
			t.Errorf("tenant %s max %.3fms < mean %.3fms", tenant, st.MaxMS, st.MeanMS)
		}
		totalMax += st.MaxMS
	}
	// With one execution token and six serialized queries, somebody waited.
	if totalMax == 0 {
		t.Error("no tenant recorded any queue wait despite MaxInflight=1 contention")
	}
}
