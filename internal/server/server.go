package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ntga/internal/cluster"
	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
	"ntga/internal/trace"
)

// ErrOverloaded is the load-shedding error: the request was refused at
// admission because MaxInflight queries are already running and the
// waiting line is at MaxQueue. Clients should back off and retry; the HTTP
// layer maps it to 429.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// ErrBadQuery wraps parse/compile failures so the HTTP layer can map them
// to 400 instead of 500.
var ErrBadQuery = errors.New("server: bad query")

// Config sizes the resident service.
type Config struct {
	// Nodes / Replication size the simulated cluster (defaults 8 / 1).
	Nodes       int
	Replication int
	// MapSlots / ReduceSlots size the shared slot pool every in-flight
	// workflow leases tasks from (defaults 8 / 8). These replace the
	// per-run MapParallelism/ReduceParallelism knobs.
	MapSlots    int
	ReduceSlots int
	// MaxInflight bounds concurrently executing queries; MaxQueue bounds
	// how many more may wait for an execution token. Beyond both, requests
	// are shed with ErrOverloaded (defaults 4 / 16).
	MaxInflight int
	MaxQueue    int
	// Admission, when set, replaces the fixed MaxInflight+MaxQueue
	// admission window with the p95-adaptive controller (admission.go):
	// the shed threshold follows the measured queue wait instead of a
	// static count. nil keeps the fixed window exactly as before.
	Admission *AdmissionConfig
	// DefaultTimeout is the per-query deadline when a request does not set
	// its own (default 60s).
	DefaultTimeout time.Duration
	// ResultCacheEntries sizes the LRU result cache (default 256; negative
	// disables caching).
	ResultCacheEntries int
	// DefaultEngine answers requests that name no engine (default
	// "ntga-lazy"; "auto" asks the catalog-driven advisor per query).
	DefaultEngine string
	// Reducers / SplitRecords / SortBufferBytes are the per-query
	// EngineConfig knobs (defaults 8 / 8192 / 0).
	Reducers        int
	SplitRecords    int
	SortBufferBytes int64
	// TaskMaxAttempts / TaskFailureRate / TaskFailureSeed pass through to
	// every query's engine config, so fault tolerance can be exercised
	// under concurrent serving (chaos testing).
	TaskMaxAttempts int
	TaskFailureRate float64
	TaskFailureSeed int64
	// Faults arms the full mid-phase chaos plan on every served workflow
	// (shared across queries — the plan's draws are checkpoint-scoped), so
	// serving can be soaked with attempts that die holding partial state.
	Faults *mapreduce.FaultPlan
	// Tracer, when set, records every served workflow's span tree
	// (requests that ask for a Timeline still get a private tracer). The
	// concurrency acceptance tests use it to prove from task spans that
	// in-flight tasks never exceed the slot pool.
	Tracer *trace.Tracer
	// Cluster switches execution to distributed mode: queries are shipped
	// to this ntga-master (which owns the authoritative DFS and the worker
	// fleet) instead of running on the in-process engine. The server still
	// compiles, plans, caches, and renders locally — New verifies at
	// startup that the master serves the same dataset (content-hash
	// handshake), so row IDs and caches stay valid.
	Cluster *cluster.Client
	// LocalFallback arms the serve-path degradation endgame: a query that
	// cannot reach the cluster (master lost at submit or mid-flight)
	// transparently re-runs on the in-process engine over the server's own
	// copy of the dataset — same plan, byte-identical rows — instead of
	// failing with 503. The server always loads the dataset locally (the
	// dictionary and catalog need it), so the fallback costs no extra
	// memory; it only trades the fleet's parallelism for availability.
	LocalFallback bool
	// ProbeEvery, in distributed mode, starts a background prober that
	// scrapes the master's status on this interval and walks the health
	// ladder (ok → degraded → down) between requests; 0 relies on
	// on-demand scrapes (each /healthz, /metrics, and failed cluster
	// query also feeds the ladder).
	ProbeEvery time.Duration
	// CompactAfter, when > 0, auto-runs delta-merge compaction at the end
	// of any ingest that leaves the delta chain this long or longer. 0
	// leaves compaction to explicit POST /compact calls.
	CompactAfter int
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.MapSlots == 0 {
		c.MapSlots = 8
	}
	if c.ReduceSlots == 0 {
		c.ReduceSlots = 8
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 256
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = "ntga-lazy"
	}
	if c.Reducers == 0 {
		c.Reducers = 8
	}
	return c
}

// Server is the resident query service: one DFS with the triple relation
// loaded, one statistics catalog, a shared slot pool, the plan and result
// caches, and the admission machinery. Safe for concurrent use.
type Server struct {
	cfg  Config
	dfs  *hdfs.DFS
	dict *rdf.Dict

	// dsMu guards the mutable dataset view below: ingestion moves all of
	// it atomically, and every query snapshots it once (dataset()) so one
	// request sees one consistent (input, deltas, catalog, versions) set.
	dsMu sync.RWMutex
	// input is the DFS name of the base triple relation every query scans;
	// deltas is the uncompacted delta chain overlaid on it.
	input   string
	deltas  []string
	catalog *plan.Catalog
	// catalogVersion keys the plan cache; datasetVersion keys the result
	// cache. Both are content hashes, so any data change invalidates by
	// key miss (ingest additionally re-keys retained result entries).
	catalogVersion string
	datasetVersion string
	triples        int64

	// store owns the versioned dataset manifest and the delta-block write
	// path; catState is the mergeable catalog accumulator ingests fold
	// into instead of rescanning. ingestMu serializes ingest/compact
	// against each other (queries never take it).
	store    *ingest.Store
	catState *plan.CatalogState
	ingestMu sync.Mutex

	pool    *Pool
	plans   *planCache
	results *resultCache

	// admitted counts requests inside the admission window (running or
	// queued); sem is the MaxInflight execution token pool. admission is
	// the optional adaptive window controller (nil = fixed window);
	// queueWaits tracks the admission→token wait per tenant for /metrics.
	admitted   atomic.Int64
	sem        chan struct{}
	admission  *admissionController
	queueWaits *queueWaits

	jobs *jobRegistry

	// health is the server's position on the cluster health ladder
	// (always "ok" in local mode).
	health *healthTracker

	baseCtx context.Context
	stop    context.CancelFunc
	started time.Time

	// Rolled-up service counters (atomics).
	mQueries   atomic.Int64
	mSucceeded atomic.Int64
	mFailed    atomic.Int64
	mShed      atomic.Int64
	mCycles    atomic.Int64
	mReclaimed atomic.Int64
	mFallbacks atomic.Int64
	// Ingest-path counters: accepted batches / triples, compactions run,
	// and the cumulative retained/evicted split of result-cache upkeep.
	mIngests       atomic.Int64
	mIngestTriples atomic.Int64
	mCompactions   atomic.Int64
	mCacheRetained atomic.Int64
	mCacheEvicted  atomic.Int64
}

// New builds a server over the given graph: loads the triple relation into
// a fresh DFS, computes the exact statistics catalog and the content
// versions, and stands up the pool, caches, and admission state.
func New(cfg Config, g *rdf.Graph) (*Server, error) {
	cfg = cfg.withDefaults()
	pool, err := NewPool(cfg.MapSlots, cfg.ReduceSlots)
	if err != nil {
		return nil, err
	}
	dfs := hdfs.New(hdfs.Config{Nodes: cfg.Nodes, Replication: cfg.Replication})
	const input = "data/triples"
	if err := engine.LoadGraph(dfs, input, g); err != nil {
		return nil, fmt.Errorf("server: loading graph: %w", err)
	}
	store, err := ingest.Init(dfs, input, g)
	if err != nil {
		return nil, fmt.Errorf("server: initializing dataset manifest: %w", err)
	}
	cat := plan.FromGraph(g)
	catVer, err := catalogVersion(cat)
	if err != nil {
		return nil, err
	}
	if cfg.Cluster != nil {
		// Distributed mode: the master must be serving the exact dataset
		// this server compiled its dictionary from, or every shipped plan
		// and returned row would silently mean different terms.
		hctx, hcancel := context.WithTimeout(context.Background(), 10*time.Second)
		st, err := cfg.Cluster.Status(hctx)
		hcancel()
		if err != nil {
			return nil, fmt.Errorf("server: cluster handshake with %s: %w", cfg.Cluster.Addr(), err)
		}
		if st.DatasetVersion != datasetVersion(g) {
			return nil, fmt.Errorf("server: cluster master %s serves dataset %s but -data hashes to %s; point both at the same file",
				cfg.Cluster.Addr(), st.DatasetVersion, datasetVersion(g))
		}
	}
	var ctrl *admissionController
	if cfg.Admission != nil {
		ctrl, err = newAdmissionController(*cfg.Admission, cfg.MaxInflight+cfg.MaxQueue)
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		dfs:            dfs,
		dict:           g.Dict,
		input:          input,
		catalog:        cat,
		catalogVersion: catVer,
		datasetVersion: datasetVersion(g),
		triples:        int64(len(g.Triples)),
		store:          store,
		catState:       plan.StateFromGraph(g),
		pool:           pool,
		plans:          newPlanCache(),
		results:        newResultCache(cfg.ResultCacheEntries),
		sem:            make(chan struct{}, cfg.MaxInflight),
		admission:      ctrl,
		queueWaits:     newQueueWaits(),
		jobs:           newJobRegistry(),
		health:         newHealthTracker(),
		baseCtx:        ctx,
		stop:           cancel,
		started:        time.Now(),
	}
	if cfg.Cluster != nil && cfg.ProbeEvery > 0 {
		go s.prober(cfg.ProbeEvery)
	}
	return s, nil
}

// prober walks the health ladder on a clock, so /healthz reflects a lost
// master even between requests. It dies with the server's base context.
func (s *Server) prober(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.clusterMetrics()
		}
	}
}

// Close cancels every in-flight query's base context.
func (s *Server) Close() { s.stop() }

// datasetVersion content-hashes the loaded triples (IDs are stable for one
// dictionary, which lives exactly as long as the loaded dataset). It is the
// same hash a cluster master advertises, so ntga-serve -cluster can verify
// the handshake.
func datasetVersion(g *rdf.Graph) string { return g.Version() }

// ErrUnversionable marks a statistics catalog that could not be rendered
// into a content hash. Both caches key on the catalog version, so a server
// cannot safely run without one: a silent shared sentinel (the old
// "unversioned" fallback) would let two different catalogs collide on one
// plan-cache key. New fails fast on it; the ingest path refuses to move the
// dataset forward on it.
var ErrUnversionable = errors.New("server: catalog version unavailable")

// encodeCatalog is the catalog → bytes seam catalogVersion hashes through.
// A package variable so tests can force the encode to fail; production
// always points at plan.Catalog.Write.
var encodeCatalog = func(cat *plan.Catalog, w io.Writer) error { return cat.Write(w) }

// catalogVersion content-hashes the statistics catalog's JSON rendering.
func catalogVersion(cat *plan.Catalog) (string, error) {
	var sb strings.Builder
	if err := encodeCatalog(cat, &sb); err != nil {
		return "", fmt.Errorf("%w: %v", ErrUnversionable, err)
	}
	return fingerprint(sb.String()), nil
}

// datasetView is one query's consistent snapshot of the mutable dataset
// state: everything evaluate needs travels together, so an ingest landing
// mid-request can never mix an old catalog with a new delta chain.
type datasetView struct {
	input          string
	deltas         []string
	catalog        *plan.Catalog
	catalogVersion string
	datasetVersion string
}

// dataset snapshots the current dataset view. The delta slice is aliased,
// never mutated in place: ingest swaps in a fresh slice under the write
// lock, and the files a snapshot names are immutable (compaction retains
// them), so an in-flight query finishes on its pinned version.
func (s *Server) dataset() datasetView {
	s.dsMu.RLock()
	defer s.dsMu.RUnlock()
	return datasetView{
		input:          s.input,
		deltas:         s.deltas,
		catalog:        s.catalog,
		catalogVersion: s.catalogVersion,
		datasetVersion: s.datasetVersion,
	}
}

// Request is one query submission (the POST /query body).
type Request struct {
	// Query is the SPARQL text (required).
	Query string `json:"query"`
	// Engine overrides the server's default engine for this request
	// ("auto" asks the catalog advisor).
	Engine string `json:"engine,omitempty"`
	// PhiM overrides the partial β-unnest partition range.
	PhiM int `json:"phim,omitempty"`
	// Tenant and Weight select the slot pool scheduling class; empty
	// tenant means "default", weight <= 0 means 1.
	Tenant string `json:"tenant,omitempty"`
	Weight int    `json:"weight,omitempty"`
	// TimeoutMS caps the query's wall clock (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this request (it still
	// populates it), for benchmarking and freshness-paranoid callers.
	NoCache bool `json:"no_cache,omitempty"`
	// Limit truncates the returned rows (0 = all); TotalRows always
	// reports the full count.
	Limit int `json:"limit,omitempty"`
	// Metrics includes per-job workflow metrics in the response.
	Metrics bool `json:"metrics,omitempty"`
	// Timeline includes a plain-text per-job task timeline (implies
	// tracing the run).
	Timeline bool `json:"timeline,omitempty"`
}

// JobSummary is the per-job slice of mapreduce.JobMetrics a response
// carries when Request.Metrics is set.
type JobSummary struct {
	Job                string `json:"job"`
	DurationMS         int64  `json:"duration_ms"`
	MapInputBytes      int64  `json:"map_input_bytes"`
	ShuffleBytes       int64  `json:"shuffle_bytes"`
	ReduceOutputBytes  int64  `json:"reduce_output_bytes"`
	SpilledBytes       int64  `json:"spilled_bytes"`
	TaskRetries        int64  `json:"task_retries"`
	TempBytesReclaimed int64  `json:"temp_bytes_reclaimed"`
}

// Response is one query's answer (the POST /query reply body).
type Response struct {
	Engine string `json:"engine"`
	// Cache is the result-cache disposition: "hit" (served without any MR
	// cycle), "miss", "bypass" (NoCache), or "off" (cache disabled).
	Cache string `json:"cache"`
	// PlanCache is "hit" or "miss" for the optimizer-output cache.
	PlanCache string `json:"plan_cache"`

	IsCount bool     `json:"is_count"`
	Count   int64    `json:"count"`
	Header  []string `json:"header,omitempty"`
	// Rows are the projected, decoded result rows (tab-separated terms),
	// possibly truncated by Request.Limit.
	Rows      []string `json:"rows,omitempty"`
	TotalRows int      `json:"total_rows"`

	// Cycles is the number of MR jobs this request actually executed —
	// zero when served from the result cache.
	Cycles             int    `json:"cycles"`
	ShuffleBytes       int64  `json:"shuffle_bytes"`
	EstShuffleBytes    int64  `json:"est_shuffle_bytes"`
	OutputRecords      int64  `json:"output_records"`
	OutputBytes        int64  `json:"output_bytes"`
	TaskRetries        int64  `json:"task_retries"`
	TempBytesReclaimed int64  `json:"temp_bytes_reclaimed"`
	DurationMS         int64  `json:"duration_ms"`
	JoinOrder          []int  `json:"join_order,omitempty"`
	Tenant             string `json:"tenant,omitempty"`

	// Fallback marks a distributed request that lost the cluster and was
	// served by the in-process engine instead (Config.LocalFallback).
	Fallback bool `json:"fallback,omitempty"`

	Jobs     []JobSummary `json:"jobs,omitempty"`
	Timeline string       `json:"timeline,omitempty"`
}

// admit charges one request against the admission window, shedding with
// ErrOverloaded when the window is full. The window is the fixed
// MaxInflight+MaxQueue, or — with the adaptive controller armed — the
// current p95-steered limit. The returned release must be called when the
// request finishes.
func (s *Server) admit() (func(), error) {
	limit := int64(s.cfg.MaxInflight + s.cfg.MaxQueue)
	if s.admission != nil {
		limit = s.admission.Limit()
	}
	if s.admitted.Add(1) > limit {
		s.admitted.Add(-1)
		s.mShed.Add(1)
		return nil, ErrOverloaded
	}
	return func() { s.admitted.Add(-1) }, nil
}

// Evaluate runs one query synchronously: admission, parse/compile, plan
// cache, result cache, and — on a miss — a slot-pool-scheduled MR
// execution under the request deadline.
func (s *Server) Evaluate(ctx context.Context, req Request) (*Response, error) {
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	return s.evaluate(ctx, req)
}

// evaluate is the admission-charged evaluation body.
func (s *Server) evaluate(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	s.mQueries.Add(1)
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	q, err := s.compile(req.Query)
	if err != nil {
		s.mFailed.Add(1)
		return nil, err
	}

	// One consistent dataset snapshot per request: catalog, versions, base
	// input, and delta chain all move together under ingestion.
	ds := s.dataset()

	// Plan cache: resolve the engine and join order once per (query,
	// engine request, catalog version).
	engName := req.Engine
	if engName == "" {
		engName = s.cfg.DefaultEngine
	}
	qfp := queryFingerprint(q)
	planKey := fingerprint(qfp, engName, fmt.Sprint(req.PhiM), ds.catalogVersion)
	entry, planHit := s.plans.get(planKey)
	if !planHit {
		entry, err = s.planQuery(ds.catalog, engName, req.PhiM, q)
		if err != nil {
			s.mFailed.Add(1)
			return nil, err
		}
		s.plans.put(planKey, entry)
	}
	if entry.Changed {
		joins, err := q.JoinsForOrder(entry.Order)
		if err == nil {
			q.Joins = joins
		}
	}
	planDisposition := "miss"
	if planHit {
		planDisposition = "hit"
	}

	resp := &Response{
		Engine:          entry.EngineName,
		PlanCache:       planDisposition,
		EstShuffleBytes: entry.EstShuffle,
		JoinOrder:       entry.Order,
		Tenant:          req.Tenant,
		IsCount:         q.IsCount(),
	}

	// Result cache: a hit answers without touching the cluster at all —
	// zero MR cycles, zero slot leases. The identity travels with the
	// entry so ingest-time maintenance can re-key retained results.
	resultKey := fingerprint(planKey, ds.datasetVersion)
	cid := cacheIdentity{q: q, qfp: qfp, engine: engName, phiM: fmt.Sprint(req.PhiM)}
	switch {
	case s.results == nil:
		resp.Cache = "off"
	case req.NoCache:
		resp.Cache = "bypass"
	default:
		if cached, ok := s.results.get(resultKey); ok {
			resp.Cache = "hit"
			resp.Engine = cached.engine
			s.renderRows(resp, cached, req.Limit)
			resp.DurationMS = time.Since(start).Milliseconds()
			s.mSucceeded.Add(1)
			return resp, nil
		}
		resp.Cache = "miss"
	}

	// Execution token: at most MaxInflight queries drive the cluster at
	// once; the rest wait here (bounded by admission) or die with their
	// deadline. The wait is the queue-wait signal: it feeds the per-tenant
	// /metrics rollup and — when armed — the adaptive admission
	// controller, including waits that ended in a deadline (those are the
	// strongest over-admission evidence there is).
	queued := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.observeQueueWait(req.Tenant, time.Since(queued))
	case <-ctx.Done():
		s.observeQueueWait(req.Tenant, time.Since(queued))
		s.mFailed.Add(1)
		return nil, context.Cause(ctx)
	}
	defer func() { <-s.sem }()

	if s.cfg.Cluster != nil {
		resp2, err := s.evaluateCluster(ctx, req, q, entry, resp, resultKey, cid, start)
		if err == nil {
			s.mSucceeded.Add(1)
			return resp2, nil
		}
		if !errors.Is(err, mapreduce.ErrClusterUnavailable) {
			s.mFailed.Add(1)
			return resp2, err
		}
		// The substrate is gone, not the query: record the direct evidence
		// on the health ladder, then degrade — 503 + Retry-After, or (with
		// the fallback armed) run the exact same plan on the in-process
		// engine over the server's own copy of the dataset.
		s.health.observe(HealthDown)
		if !s.cfg.LocalFallback {
			s.mFailed.Add(1)
			return resp2, fmt.Errorf("%w: %v", ErrUnavailable, err)
		}
		s.mFallbacks.Add(1)
		resp.Fallback = true
	}

	resp2, err := s.evaluateLocal(ctx, req, q, entry, resp, ds, resultKey, cid, start)
	if err != nil {
		s.mFailed.Add(1)
		return resp2, err
	}
	s.mSucceeded.Add(1)
	return resp2, nil
}

// evaluateLocal runs the planned query on the in-process engine — the
// local-mode execution path, and the byte-identical fallback a distributed
// server degrades to when the fleet is unreachable.
func (s *Server) evaluateLocal(ctx context.Context, req Request, q *query.Query, entry planEntry, resp *Response, ds datasetView, resultKey string, cid cacheIdentity, start time.Time) (*Response, error) {
	eng, err := engineByName(entry.EngineName, entry.PhiM)
	if err != nil {
		return nil, err
	}
	tracer := s.cfg.Tracer
	if req.Timeline {
		tracer = trace.New()
	}
	mr := mapreduce.NewEngine(s.dfs, mapreduce.EngineConfig{
		DefaultReducers: s.cfg.Reducers,
		SplitRecords:    s.cfg.SplitRecords,
		SortBufferBytes: s.cfg.SortBufferBytes,
		TaskMaxAttempts: s.cfg.TaskMaxAttempts,
		TaskFailureRate: s.cfg.TaskFailureRate,
		TaskFailureSeed: s.cfg.TaskFailureSeed,
		Faults:          s.cfg.Faults,
		Slots:           s.pool.Lease(req.Tenant, req.Weight),
		Tracer:          tracer,
	}).WithContext(ctx)

	// The snapshot's base and delta chain run together: uncompacted delta
	// blocks are overlaid on every scan of the triple relation, with rows
	// byte-identical to a from-scratch load of the merged dataset.
	res, err := engine.RunWithDeltas(eng, mr, q, ds.input, ds.deltas, nil)
	if res != nil {
		resp.Cycles = len(res.Workflow.Jobs)
		resp.ShuffleBytes = res.Workflow.TotalMapOutputBytes()
		resp.TaskRetries = res.Workflow.TotalTaskRetries()
		resp.TempBytesReclaimed = res.Workflow.TotalTempBytesReclaimed()
		s.mCycles.Add(int64(resp.Cycles))
		s.mReclaimed.Add(resp.TempBytesReclaimed)
		if req.Metrics {
			for _, j := range res.Workflow.Jobs {
				resp.Jobs = append(resp.Jobs, JobSummary{
					Job:                j.Job,
					DurationMS:         j.Duration.Milliseconds(),
					MapInputBytes:      j.MapInputBytes,
					ShuffleBytes:       j.MapOutputBytes,
					ReduceOutputBytes:  j.ReduceOutputBytes,
					SpilledBytes:       j.SpilledBytes,
					TaskRetries:        j.TaskRetries,
					TempBytesReclaimed: j.TempBytesReclaimed,
				})
			}
		}
	}
	// Only the request-private tracer is rendered: snapshotting a shared
	// config tracer here would race with other queries' spans finishing.
	if req.Timeline {
		resp.Timeline = trace.Timeline(tracer.Roots())
	}
	if err != nil {
		return resp, err
	}

	cached := newResultEntry(q, res.Engine, res.Rows, res.IsCount, res.Count, res.OutputRecords, res.OutputBytes)
	s.results.put(resultKey, cached, cid)
	resp.Engine = res.Engine
	s.renderRows(resp, cached, req.Limit)
	resp.DurationMS = time.Since(start).Milliseconds()
	return resp, nil
}

// evaluateCluster ships the planned query to the distributed master and
// folds the reply into the response/result-cache machinery exactly where a
// local engine run would. The server's planning decisions travel with the
// query (resolved engine, φ_m, optimizer join order), so the master
// executes the same physical plan the local path would have.
func (s *Server) evaluateCluster(ctx context.Context, req Request, q *query.Query, entry planEntry, resp *Response, resultKey string, cid cacheIdentity, start time.Time) (*Response, error) {
	if req.Timeline {
		return nil, fmt.Errorf("%w: timeline rendering is not available in distributed (-cluster) mode", ErrBadQuery)
	}
	args := &cluster.RunArgs{
		Query:        req.Query,
		Engine:       entry.EngineName,
		PhiM:         entry.PhiM,
		Order:        entry.Order,
		HasOrder:     entry.Changed,
		Reducers:     s.cfg.Reducers,
		SplitRecords: s.cfg.SplitRecords,
	}
	if dl, ok := ctx.Deadline(); ok {
		// Hand the master the remaining budget so it stops the actual work,
		// not just our wait.
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			args.TimeoutMS = ms
		}
	}
	reply, err := s.cfg.Cluster.Run(ctx, args)
	if err != nil {
		return resp, err
	}
	resp.Cycles = len(reply.Workflow.Jobs)
	resp.ShuffleBytes = reply.Workflow.TotalMapOutputBytes()
	resp.TaskRetries = reply.Workflow.TotalTaskRetries()
	resp.TempBytesReclaimed = reply.Workflow.TotalTempBytesReclaimed()
	s.mCycles.Add(int64(resp.Cycles))
	s.mReclaimed.Add(resp.TempBytesReclaimed)
	if req.Metrics {
		for _, j := range reply.Workflow.Jobs {
			resp.Jobs = append(resp.Jobs, JobSummary{
				Job:                j.Job,
				DurationMS:         j.Duration.Milliseconds(),
				MapInputBytes:      j.MapInputBytes,
				ShuffleBytes:       j.MapOutputBytes,
				ReduceOutputBytes:  j.ReduceOutputBytes,
				SpilledBytes:       j.SpilledBytes,
				TaskRetries:        j.TaskRetries,
				TempBytesReclaimed: j.TempBytesReclaimed,
			})
		}
	}
	// The handshake pinned both processes to one dataset, so the master's
	// row IDs are this dictionary's IDs: cache and render as if local.
	cached := newResultEntry(q, reply.Engine, reply.Rows, reply.IsCount, reply.Count, reply.OutputRecords, reply.OutputBytes)
	s.results.put(resultKey, cached, cid)
	resp.Engine = reply.Engine
	s.renderRows(resp, cached, req.Limit)
	resp.DurationMS = time.Since(start).Milliseconds()
	return resp, nil
}

// observeQueueWait records one admission→execution-token wait against the
// tenant's /metrics rollup and the adaptive admission controller.
func (s *Server) observeQueueWait(tenant string, wait time.Duration) {
	s.queueWaits.observe(tenant, wait)
	if s.admission != nil {
		s.admission.Observe(wait)
	}
}

// compile parses and compiles the SPARQL text against the resident
// dictionary, wrapping failures in ErrBadQuery.
func (s *Server) compile(src string) (*query.Query, error) {
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("%w: empty query", ErrBadQuery)
	}
	pq, err := sparql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	q, err := query.Compile(pq, s.dict)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return q, nil
}

// planQuery resolves "auto" through the catalog advisor, runs the
// join-order optimizer, and packages the decisions as a cacheable entry.
// The catalog is the request's snapshot, not the live field: planning and
// key derivation must see the same statistics.
func (s *Server) planQuery(cat *plan.Catalog, engName string, phiM int, q *query.Query) (planEntry, error) {
	resolved := engName
	if engName == "auto" {
		ua, err := plan.AdviseUnnest(cat.AvgTriplesPerSubject(), cat.Objects, q, s.cfg.Reducers)
		if err != nil {
			return planEntry{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		if ua.Lazy {
			resolved = "ntga-lazy"
		} else {
			resolved = "ntga-eager"
		}
		if phiM == 0 {
			phiM = ua.PhiM
		}
	}
	if _, err := engineByName(resolved, phiM); err != nil {
		return planEntry{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	entry := planEntry{EngineName: resolved, PhiM: phiM}
	r, err := plan.Optimize(cat, q)
	if err != nil {
		return planEntry{}, err
	}
	entry.Order = r.Order
	entry.Changed = r.Changed
	entry.EstShuffle = r.Est
	return entry, nil
}

// renderRows fills the response's row/count section from a result entry.
// The entry already holds the projected, formatted strings
// (newResultEntry), so this is zero-copy: the response aliases the stored
// header and row slices — no re-projection, no re-formatting, no
// per-request allocation beyond the three-word subslice.
func (s *Server) renderRows(resp *Response, e resultEntry, limit int) {
	resp.IsCount = e.isCount
	resp.Count = e.count
	resp.OutputRecords = e.outRecords
	resp.OutputBytes = e.outBytes
	resp.Header = e.header
	if e.isCount {
		return
	}
	resp.TotalRows = e.totalRows
	n := e.totalRows
	if limit > 0 && limit < n {
		n = limit
	}
	resp.Rows = e.rendered[:n:n]
}

// engineByName maps a concrete engine name (never "auto" — planQuery
// resolves that first) to a fresh engine instance. Engines are stateless
// between runs, but each request gets its own instance anyway so nothing
// is shared across goroutines.
func engineByName(name string, phiM int) (engine.QueryEngine, error) {
	switch name {
	case "pig":
		return relmr.NewPig(), nil
	case "hive":
		return relmr.NewHive(), nil
	case "sj-per-cycle":
		return relmr.NewSJPerCycle(), nil
	case "sel-sj-first":
		return relmr.NewSelSJFirst(), nil
	case "ntga-eager":
		return ntgamr.NewEager(), nil
	case "ntga-lazy":
		return ntgamr.New(ntgamr.LazyAuto, phiM), nil
	case "ntga-lazy-full":
		return ntgamr.New(ntgamr.LazyFull, phiM), nil
	case "ntga-lazy-partial":
		return ntgamr.New(ntgamr.LazyPartial, phiM), nil
	default:
		return nil, fmt.Errorf("server: unknown engine %q (want auto, pig, hive, sj-per-cycle, sel-sj-first, ntga-eager, ntga-lazy, ntga-lazy-full, ntga-lazy-partial)", name)
	}
}

// CacheStats is one cache's rollup for /metrics.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int   `json:"size"`
}

// Metrics is the GET /metrics snapshot.
type Metrics struct {
	UptimeMS           int64 `json:"uptime_ms"`
	Queries            int64 `json:"queries"`
	Succeeded          int64 `json:"succeeded"`
	Failed             int64 `json:"failed"`
	Shed               int64 `json:"shed"`
	Admitted           int64 `json:"admitted"`
	AsyncJobs          int   `json:"async_jobs"`
	MRCycles           int64 `json:"mr_cycles"`
	TempBytesReclaimed int64 `json:"temp_bytes_reclaimed"`
	// TempFiles is the number of attempt-scoped temporaries currently on
	// the DFS; outside the instant an attempt is streaming, it should be 0
	// (the zero-leak invariant a monitor can alert on).
	TempFiles   int        `json:"temp_files"`
	PlanCache   CacheStats `json:"plan_cache"`
	ResultCache CacheStats `json:"result_cache"`
	// Admission is the shed policy's live state: the fixed window, or the
	// adaptive controller's current p95-steered limit.
	Admission AdmissionMetrics `json:"admission"`
	// QueueWait is the per-tenant admission→execution-token wait rollup —
	// the signal the adaptive controller steers on, observable even when
	// only slot peaks used to be visible.
	QueueWait      map[string]QueueWaitStats `json:"queue_wait"`
	Slots          map[string]SlotStats      `json:"slots"`
	SlotGrants     int64                     `json:"slot_grants"`
	Triples        int64                     `json:"triples"`
	DatasetVersion string                    `json:"dataset_version"`
	CatalogVersion string                    `json:"catalog_version"`
	// Ingest-path rollup: accepted batches and their triples, compactions
	// run, the current uncompacted delta-chain length, and the cumulative
	// retained/evicted split of delta-aware result-cache maintenance.
	Ingests         int64 `json:"ingests"`
	IngestedTriples int64 `json:"ingested_triples"`
	Compactions     int64 `json:"compactions"`
	DeltaBlocks     int   `json:"delta_blocks"`
	CacheRetained   int64 `json:"cache_retained"`
	CacheEvicted    int64 `json:"cache_evicted"`
	// Cluster is the execution substrate's health: simulated-DFS node
	// liveness in local mode, per-worker liveness and slot occupancy in
	// distributed mode.
	Cluster ClusterMetrics `json:"cluster"`
}

// AdmissionMetrics is the /metrics view of the shed policy.
type AdmissionMetrics struct {
	// Policy is "fixed" (MaxInflight+MaxQueue window) or "adaptive".
	Policy string `json:"policy"`
	// Window is the current admission limit (running + queued requests).
	Window int64 `json:"window"`
	// Adaptive-only: gradient steps taken, last measured queue-wait p95,
	// and the target it steers to.
	Adjusts   int64   `json:"adjusts,omitempty"`
	LastP95MS float64 `json:"last_p95_ms,omitempty"`
	TargetMS  float64 `json:"target_ms,omitempty"`
}

// ClusterMetrics is the /metrics view of where queries actually execute.
type ClusterMetrics struct {
	// Mode is "local" (in-process engine over the simulated DFS) or
	// "distributed" (shipped to an ntga-master's worker fleet).
	Mode string `json:"mode"`
	// Health is the ladder state this scrape lands on: "ok", "degraded"
	// (fleet impaired), or "down" (master unreachable). Local mode is
	// always "ok".
	Health string `json:"health"`
	// Local mode: simulated DFS data nodes.
	NodesAlive int `json:"nodes_alive,omitempty"`
	NodesTotal int `json:"nodes_total,omitempty"`
	// Distributed mode: the master and its registered workers.
	MasterAddr        string                 `json:"master_addr,omitempty"`
	WorkersAlive      int                    `json:"workers_alive,omitempty"`
	WorkersRegistered int                    `json:"workers_registered,omitempty"`
	WorkersLost       int64                  `json:"workers_lost,omitempty"`
	ActiveQueries     int                    `json:"active_queries,omitempty"`
	TasksDispatched   int64                  `json:"tasks_dispatched,omitempty"`
	Workers           []cluster.WorkerStatus `json:"workers,omitempty"`
	// Transport-recovery rollup: retries and re-dials the retrying RPC
	// layer absorbed (fleet totals from worker heartbeats plus this
	// server's own master link), transient shuffle-fetch retries, worker
	// re-registrations the master accepted, and queries this server served
	// via the local fallback after losing the cluster.
	RPCRetries            int64 `json:"rpc_retries,omitempty"`
	Redials               int64 `json:"redials,omitempty"`
	FetchTransientRetries int64 `json:"fetch_transient_retries,omitempty"`
	WorkerReregistrations int64 `json:"worker_reregistrations,omitempty"`
	LocalFallbacks        int64 `json:"local_fallbacks,omitempty"`
	// Error reports a failed status scrape (master unreachable).
	Error string `json:"error,omitempty"`
}

// Snapshot assembles the current service metrics.
func (s *Server) Snapshot() Metrics {
	s.dsMu.RLock()
	triples, dsVer, catVer, deltaBlocks := s.triples, s.datasetVersion, s.catalogVersion, len(s.deltas)
	s.dsMu.RUnlock()
	m := Metrics{
		UptimeMS:           time.Since(s.started).Milliseconds(),
		Queries:            s.mQueries.Load(),
		Succeeded:          s.mSucceeded.Load(),
		Failed:             s.mFailed.Load(),
		Shed:               s.mShed.Load(),
		Admitted:           s.admitted.Load(),
		AsyncJobs:          s.jobs.size(),
		MRCycles:           s.mCycles.Load(),
		TempBytesReclaimed: s.mReclaimed.Load(),
		TempFiles:          len(s.dfs.ListPrefix("_tmp/")),
		Triples:            triples,
		DatasetVersion:     dsVer,
		CatalogVersion:     catVer,
		Ingests:            s.mIngests.Load(),
		IngestedTriples:    s.mIngestTriples.Load(),
		Compactions:        s.mCompactions.Load(),
		DeltaBlocks:        deltaBlocks,
		CacheRetained:      s.mCacheRetained.Load(),
		CacheEvicted:       s.mCacheEvicted.Load(),
	}
	m.PlanCache.Hits, m.PlanCache.Misses, m.PlanCache.Size = s.plans.stats()
	m.ResultCache.Hits, m.ResultCache.Misses, m.ResultCache.Size = s.results.stats()
	if s.admission != nil {
		limit, adjusts, lastP95 := s.admission.stats()
		m.Admission = AdmissionMetrics{
			Policy:    "adaptive",
			Window:    limit,
			Adjusts:   adjusts,
			LastP95MS: float64(lastP95.Nanoseconds()) / 1e6,
			TargetMS:  float64(s.cfg.Admission.TargetQueueWait.Nanoseconds()) / 1e6,
		}
	} else {
		m.Admission = AdmissionMetrics{Policy: "fixed", Window: int64(s.cfg.MaxInflight + s.cfg.MaxQueue)}
	}
	m.QueueWait = s.queueWaits.snapshot()
	m.Slots, m.SlotGrants = s.pool.Stats()
	m.Cluster = s.clusterMetrics()
	return m
}

// clusterMetrics scrapes the execution substrate: DFS node liveness in
// local mode, the master's worker table in distributed mode. Every scrape
// feeds the health ladder, so /metrics and /healthz double as probes.
func (s *Server) clusterMetrics() ClusterMetrics {
	if s.cfg.Cluster == nil {
		return ClusterMetrics{
			Mode:       "local",
			Health:     HealthOK,
			NodesAlive: s.dfs.AliveNodes(),
			NodesTotal: s.dfs.Config().Nodes,
		}
	}
	cm := ClusterMetrics{Mode: "distributed", MasterAddr: s.cfg.Cluster.Addr()}
	cm.LocalFallbacks = s.mFallbacks.Load()
	cm.RPCRetries, cm.Redials = s.cfg.Cluster.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := s.cfg.Cluster.Status(ctx)
	if err != nil {
		cm.Error = err.Error()
		cm.Health = healthOf(cm)
		s.health.observe(cm.Health)
		return cm
	}
	cm.WorkersRegistered = len(st.Workers)
	for _, w := range st.Workers {
		if w.Alive {
			cm.WorkersAlive++
		}
	}
	cm.WorkersLost = st.WorkersLost
	cm.ActiveQueries = st.ActiveQueries
	cm.TasksDispatched = st.TasksDispatched
	cm.Workers = st.Workers
	cm.RPCRetries += st.RPCRetries
	cm.Redials += st.Redials
	cm.FetchTransientRetries = st.FetchTransientRetries
	cm.WorkerReregistrations = st.WorkerReregistrations
	cm.Health = healthOf(cm)
	s.health.observe(cm.Health)
	return cm
}

// --- async jobs ---

// JobState is the lifecycle of an async query job.
type JobState string

const (
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobStatus is the GET /jobs/<id> view of one async query.
type JobStatus struct {
	ID       string    `json:"id"`
	State    JobState  `json:"state"`
	Error    string    `json:"error,omitempty"`
	Response *Response `json:"response,omitempty"`
}

type asyncJob struct {
	id   string
	mu   sync.Mutex
	st   JobState
	resp *Response
	err  string
	done chan struct{}
}

type jobRegistry struct {
	mu   sync.Mutex
	jobs map[string]*asyncJob
	seq  int64
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{jobs: make(map[string]*asyncJob)}
}

func (r *jobRegistry) create() *asyncJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := &asyncJob{id: fmt.Sprintf("job-%06d", r.seq), st: JobRunning, done: make(chan struct{})}
	r.jobs[j.id] = j
	return j
}

func (r *jobRegistry) get(id string) (*asyncJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r *jobRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

func (j *asyncJob) finish(resp *Response, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.st = JobFailed
		j.err = err.Error()
		j.resp = resp // partial metrics may still be useful
	} else {
		j.st = JobDone
		j.resp = resp
	}
	close(j.done)
}

func (j *asyncJob) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.st, Error: j.err, Response: j.resp}
}

// Submit starts a query asynchronously: admission is charged immediately
// (so overload sheds at submit time with ErrOverloaded), then the query
// runs under the server's base context and the usual deadline; the
// returned job ID is pollable via JobStatus / GET /jobs/<id>.
func (s *Server) Submit(req Request) (string, error) {
	release, err := s.admit()
	if err != nil {
		return "", err
	}
	j := s.jobs.create()
	go func() {
		defer release()
		resp, err := s.evaluate(s.baseCtx, req)
		j.finish(resp, err)
	}()
	return j.id, nil
}

// JobStatus looks up an async job.
func (s *Server) JobStatus(id string) (JobStatus, bool) {
	j, ok := s.jobs.get(id)
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// WaitJob blocks until the job finishes or ctx dies (for tests).
func (s *Server) WaitJob(ctx context.Context, id string) (JobStatus, error) {
	j, ok := s.jobs.get(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("server: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return JobStatus{}, context.Cause(ctx)
	}
}
