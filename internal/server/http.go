package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP API:
//
//	POST /query        — evaluate a Request; sync by default, async with
//	                     ?async=1 (returns {"job_id": ...} immediately)
//	POST /ingest       — append an N-Triples batch (raw body) as a delta
//	                     block; returns an IngestResult
//	POST /compact      — fold the delta chain into a new base generation
//	GET  /jobs/<id>    — poll an async job
//	GET  /metrics      — service metrics snapshot (JSON)
//	GET  /healthz      — liveness + dataset identity
//
// Errors are JSON {"error": ...} with ErrOverloaded → 429, ErrBadQuery →
// 400, ingest.ErrBadBatch → 422, deadline exceeded → 504, everything else
// → 500.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /compact", s.handleCompact)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	res, err := s.Ingest(r.Context(), r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	res, err := s.Compact(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: invalid request body: %v", ErrBadQuery, err))
		return
	}
	if r.URL.Query().Get("async") == "1" {
		id, err := s.Submit(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"job_id": id})
		return
	}
	resp, err := s.Evaluate(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.JobStatus(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Health is the GET /healthz body. Status is the health ladder: "ok",
// "degraded" when the service answers but its worker fleet is impaired (no
// workers registered, or some dead), or "down" when the distributed master
// itself is unreachable — the state where queries 503 or run the local
// fallback.
type Health struct {
	Status         string `json:"status"`
	Mode           string `json:"mode"`
	Triples        int64  `json:"triples"`
	DatasetVersion string `json:"dataset_version"`
	UptimeMS       int64  `json:"uptime_ms"`
	// Worker liveness (distributed mode only).
	WorkersAlive      int `json:"workers_alive,omitempty"`
	WorkersRegistered int `json:"workers_registered,omitempty"`
	// StatusHeldMS is how long the ladder has sat in Status;
	// HealthTransitions counts ladder moves since startup.
	StatusHeldMS      int64 `json:"status_held_ms,omitempty"`
	HealthTransitions int64 `json:"health_transitions,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	cm := s.clusterMetrics() // doubles as a probe: feeds the ladder
	state, held, transitions := s.health.snapshot()
	s.dsMu.RLock()
	triples, dsVer := s.triples, s.datasetVersion
	s.dsMu.RUnlock()
	h := Health{
		Status:            state,
		Mode:              cm.Mode,
		Triples:           triples,
		DatasetVersion:    dsVer,
		UptimeMS:          s.Snapshot().UptimeMS,
		WorkersAlive:      cm.WorkersAlive,
		WorkersRegistered: cm.WorkersRegistered,
		StatusHeldMS:      held.Milliseconds(),
		HealthTransitions: transitions,
	}
	writeJSON(w, http.StatusOK, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := statusForError(err)
	// Retry-After travels on the statuses that mean "try again soon"
	// (503 cluster-unavailable, 429 shed) — headers must precede the body.
	if ra := retryAfterSeconds(code); ra > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
