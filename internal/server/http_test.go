package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL)
}

func TestHTTPQueryRoundTrip(t *testing.T) {
	_, c := newHTTPServer(t, Config{})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Triples == 0 || h.DatasetVersion == "" {
		t.Fatalf("health = %+v", h)
	}

	first, err := c.Query(ctx, Request{Query: twoStarQuery, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" || first.TotalRows == 0 || first.Cycles == 0 {
		t.Fatalf("first = cache=%s rows=%d cycles=%d", first.Cache, first.TotalRows, first.Cycles)
	}
	if len(first.Jobs) != first.Cycles {
		t.Errorf("metrics jobs = %d, want one per cycle (%d)", len(first.Jobs), first.Cycles)
	}

	second, err := c.Query(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" || second.Cycles != 0 {
		t.Fatalf("second = cache=%s cycles=%d, want hit/0", second.Cache, second.Cycles)
	}
	if strings.Join(second.Rows, "\n") != strings.Join(first.Rows, "\n") {
		t.Error("cached rows differ over HTTP")
	}

	withTimeline, err := c.Query(ctx, Request{Query: twoStarQuery, NoCache: true, Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withTimeline.Timeline, "timeline") {
		t.Errorf("timeline missing from response: %q", withTimeline.Timeline)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 3 || m.ResultCache.Hits != 1 || m.Slots["map"].Capacity == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestHTTPAsyncJob(t *testing.T) {
	_, c := newHTTPServer(t, Config{})
	ctx := context.Background()
	id, err := c.Submit(ctx, Request{Query: twoStarQuery})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobRunning {
			if st.State != JobDone || st.Response == nil || st.Response.TotalRows == 0 {
				t.Fatalf("job = %+v, want done with rows", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`{"query": "SELECT WHERE {"}`); code != http.StatusBadRequest {
		t.Errorf("syntax error → %d, want 400", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Errorf("bad body → %d, want 400", code)
	}

	// Fill the admission window, then both sync and async must 429.
	r1, err := s.admit()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.admit()
	if err != nil {
		t.Fatal(err)
	}
	if code := post(`{"query": "SELECT * WHERE { ?s ?p ?o . }"}`); code != http.StatusTooManyRequests {
		t.Errorf("overload → %d, want 429", code)
	}
	if _, err := c.Submit(ctx, Request{Query: twoStarQuery}); err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("async overload err = %v, want HTTP 429", err)
	}
	r1()
	r2()

	// Deadline exceeded → 504.
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"query": "PREFIX ex: <http://ex/> SELECT * WHERE { ?g ex:label ?gl . ?g ex:xGO ?go . ?go ex:label ?gol . ?go ex:type ?t . }", "no_cache": true, "timeout_ms": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Errorf("deadline → %d, want 504 (or 200 if the run won the race)", resp.StatusCode)
	}

	// Unknown job → 404.
	jr, err := http.Get(ts.URL + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job → %d, want 404", jr.StatusCode)
	}

	// Wrong method → 405 from the method-aware mux.
	gr, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query → %d, want 405", gr.StatusCode)
	}
}

func TestClientAddrNormalization(t *testing.T) {
	if c := NewClient("127.0.0.1:7457"); c.BaseURL != "http://127.0.0.1:7457" {
		t.Errorf("BaseURL = %q", c.BaseURL)
	}
	if c := NewClient("https://svc.example/"); c.BaseURL != "https://svc.example" {
		t.Errorf("BaseURL = %q", c.BaseURL)
	}
}
