package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ntga/internal/cluster"
	"ntga/internal/enginetest"
	"ntga/internal/rdf"
)

// startServerCluster stands up an in-test master + two loopback workers
// over the same graph a test server compiles from.
func startServerCluster(t *testing.T, g *rdf.Graph) (*cluster.Master, []*cluster.Worker, *cluster.Client) {
	t.Helper()
	m, err := cluster.NewMaster(cluster.MasterConfig{
		Reducers:         4,
		HeartbeatTimeout: 400 * time.Millisecond,
		SweepEvery:       25 * time.Millisecond,
		HeartbeatEvery:   50 * time.Millisecond,
		LeaseEvery:       2 * time.Millisecond,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	var workers []*cluster.Worker
	for i := 0; i < 2; i++ {
		w := cluster.NewWorker(cluster.WorkerConfig{MapSlots: 2, ReduceSlots: 2}, nil, m.Addr())
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		workers = append(workers, w)
	}
	c, err := cluster.Dial(nil, m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return m, workers, c
}

func TestDistributedServeParity(t *testing.T) {
	g := enginetest.BioGraph()
	_, workers, cc := startServerCluster(t, g)

	local := newTestServer(t, Config{Reducers: 4})
	dist := newTestServer(t, Config{Reducers: 4, Cluster: cc})

	ctx := context.Background()
	req := Request{Query: twoStarQuery, Engine: "ntga-lazy", Metrics: true}
	lresp, err := local.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := dist.Evaluate(ctx, req)
	if err != nil {
		t.Fatalf("distributed evaluate: %v", err)
	}
	if dresp.Cache != "miss" {
		t.Errorf("first distributed evaluate cache = %q, want miss", dresp.Cache)
	}
	if !reflect.DeepEqual(lresp.Header, dresp.Header) || !reflect.DeepEqual(lresp.Rows, dresp.Rows) {
		t.Errorf("distributed rows diverge from local:\nlocal  %v %v\ndist   %v %v",
			lresp.Header, lresp.Rows, dresp.Header, dresp.Rows)
	}
	if lresp.TotalRows != dresp.TotalRows || lresp.Cycles != dresp.Cycles {
		t.Errorf("totals: local rows=%d cycles=%d, dist rows=%d cycles=%d",
			lresp.TotalRows, lresp.Cycles, dresp.TotalRows, dresp.Cycles)
	}
	if len(dresp.Jobs) != dresp.Cycles {
		t.Errorf("distributed metrics jobs = %d, want one per cycle (%d)", len(dresp.Jobs), dresp.Cycles)
	}

	// The reply populated the result cache: the second hit must not touch
	// the cluster at all.
	before := dist.Snapshot().Cluster.TasksDispatched
	again, err := dist.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cache != "hit" {
		t.Errorf("second distributed evaluate cache = %q, want hit", again.Cache)
	}
	if after := dist.Snapshot().Cluster.TasksDispatched; after != before {
		t.Errorf("result-cache hit dispatched tasks (%d -> %d)", before, after)
	}

	// Timeline rendering needs the in-process tracer; distributed mode must
	// refuse it as a bad request, not silently drop it.
	if _, err := dist.Evaluate(ctx, Request{Query: twoStarQuery, Timeline: true, NoCache: true}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("timeline in distributed mode: err = %v, want ErrBadQuery", err)
	}

	// Metrics must expose the worker fleet.
	cm := dist.Snapshot().Cluster
	if cm.Mode != "distributed" || cm.WorkersRegistered != 2 || cm.WorkersAlive != 2 || len(cm.Workers) != 2 {
		t.Errorf("cluster metrics = %+v", cm)
	}
	if lm := local.Snapshot().Cluster; lm.Mode != "local" || lm.NodesTotal == 0 {
		t.Errorf("local cluster metrics = %+v", lm)
	}

	// Healthz: ok with a full fleet, degraded once a worker dies.
	ts := httptest.NewServer(dist.Handler())
	defer ts.Close()
	hc := NewClient(ts.URL)
	h, err := hc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Mode != "distributed" || h.WorkersAlive != 2 || h.WorkersRegistered != 2 {
		t.Fatalf("health = %+v", h)
	}
	workers[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, _ = hc.Health(ctx)
		if h != nil && h.Status == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never degraded after worker kill: %+v", h)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if h.WorkersAlive != 1 || h.WorkersRegistered != 2 {
		t.Errorf("degraded health = %+v", h)
	}
	// The surviving worker must still answer queries.
	fresh, err := dist.Evaluate(ctx, Request{Query: twoStarQuery, Engine: "ntga-lazy", NoCache: true})
	if err != nil {
		t.Fatalf("evaluate after worker loss: %v", err)
	}
	if !reflect.DeepEqual(lresp.Rows, fresh.Rows) {
		t.Error("post-loss rows diverge from local")
	}
}

// A master serving a different dataset must be refused at startup — row IDs
// would otherwise silently mean different terms.
func TestDistributedServeHandshakeMismatch(t *testing.T) {
	other := rdf.NewGraph()
	other.Add(enginetest.Ex("a"), enginetest.Ex("p"), enginetest.Ex("b"))
	_, _, cc := startServerCluster(t, other)
	if _, err := New(Config{Cluster: cc}, enginetest.BioGraph()); err == nil {
		t.Fatal("New accepted a master serving a different dataset")
	}
}

// The health body must say what mode the service runs in even in local
// mode (no cluster fields).
func TestLocalHealthzMode(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Mode != "local" || h.WorkersRegistered != 0 {
		t.Errorf("local health = %+v", h)
	}
}
