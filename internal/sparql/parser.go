package sparql

import (
	"fmt"
	"strings"

	"ntga/internal/rdf"
)

// Parse parses a SPARQL SELECT query in the supported subset.
func Parse(src string) (*Query, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for statically-known queries (the query catalog);
// it panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) advance() token {
	t := p.tokens[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.advance()
	if t.kind != kind {
		return t, fmt.Errorf("sparql: expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) query() (*Query, error) {
	q := &Query{Prefixes: make(map[string]string)}
	for p.keyword("PREFIX") {
		name, err := p.expect(tokPName, "prefix name")
		if err != nil {
			return nil, err
		}
		pfx := strings.TrimSuffix(name.text, ":")
		if i := strings.IndexByte(name.text, ':'); i >= 0 {
			pfx = name.text[:i]
			if name.text[i+1:] != "" {
				return nil, fmt.Errorf("sparql: malformed PREFIX declaration %q", name.text)
			}
		}
		iri, err := p.expect(tokIRI, "IRI")
		if err != nil {
			return nil, err
		}
		q.Prefixes[pfx] = iri.text
	}
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("sparql: expected SELECT, got %s", p.peek())
	}
	if p.keyword("DISTINCT") {
		q.Distinct = true
	}
	if p.peek().kind == tokLParen {
		// (COUNT(*) AS ?var)
		p.advance()
		if !p.keyword("COUNT") {
			return nil, fmt.Errorf("sparql: expected COUNT, got %s", p.peek())
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokStar, "'*'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if !p.keyword("AS") {
			return nil, fmt.Errorf("sparql: expected AS, got %s", p.peek())
		}
		v, err := p.expect(tokVar, "variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		q.CountVar = v.text
	} else if p.peek().kind == tokStar {
		p.advance()
	} else {
		for p.peek().kind == tokVar {
			q.Select = append(q.Select, p.advance().text)
		}
		if len(q.Select) == 0 {
			return nil, fmt.Errorf("sparql: SELECT needs '*' or at least one variable")
		}
	}
	if !p.keyword("WHERE") {
		return nil, fmt.Errorf("sparql: expected WHERE, got %s", p.peek())
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.advance()
			if len(q.Where) == 0 {
				return nil, fmt.Errorf("sparql: empty WHERE clause")
			}
			if p.peek().kind != tokEOF {
				return nil, fmt.Errorf("sparql: trailing input after '}': %s", p.peek())
			}
			return q, nil
		case t.kind == tokKeyword && t.text == "FILTER":
			p.advance()
			f, err := p.filter(q)
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
		case t.kind == tokEOF:
			return nil, fmt.Errorf("sparql: unterminated WHERE clause")
		default:
			tp, err := p.triplePattern(q)
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, tp)
		}
	}
}

func (p *parser) triplePattern(q *Query) (TriplePattern, error) {
	s, err := p.patternTerm(q, "subject")
	if err != nil {
		return TriplePattern{}, err
	}
	pt, err := p.patternTerm(q, "predicate")
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.patternTerm(q, "object")
	if err != nil {
		return TriplePattern{}, err
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return TriplePattern{}, err
	}
	return TriplePattern{S: s, P: pt, O: o}, nil
}

func (p *parser) patternTerm(q *Query, position string) (PatternTerm, error) {
	t := p.advance()
	switch t.kind {
	case tokVar:
		return Variable(t.text), nil
	case tokIRI:
		return Constant(rdf.NewIRI(t.text)), nil
	case tokPName:
		term, err := expandPName(q, t.text)
		if err != nil {
			return PatternTerm{}, err
		}
		return Constant(term), nil
	case tokKeyword:
		if t.text == "A" && position == "predicate" {
			return Constant(rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")), nil
		}
		return PatternTerm{}, fmt.Errorf("sparql: unexpected keyword %s in %s position", t.text, position)
	case tokString:
		lit, err := p.literalTail(q, t.text)
		if err != nil {
			return PatternTerm{}, err
		}
		return Constant(lit), nil
	default:
		return PatternTerm{}, fmt.Errorf("sparql: unexpected %s in %s position", t, position)
	}
}

// literalTail consumes an optional @lang or ^^<datatype> after a string.
func (p *parser) literalTail(q *Query, val string) (rdf.Term, error) {
	switch p.peek().kind {
	case tokLang:
		return rdf.NewLangLiteral(val, p.advance().text), nil
	case tokDTSep:
		p.advance()
		t := p.advance()
		switch t.kind {
		case tokIRI:
			return rdf.NewTypedLiteral(val, t.text), nil
		case tokPName:
			dt, err := expandPName(q, t.text)
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.NewTypedLiteral(val, dt.Value), nil
		default:
			return rdf.Term{}, fmt.Errorf("sparql: expected datatype IRI, got %s", t)
		}
	default:
		return rdf.NewLiteral(val), nil
	}
}

func (p *parser) filter(q *Query) (Filter, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return Filter{}, err
	}
	// CONTAINS(?v, "s")  — inner form.
	if p.peek().kind == tokKeyword && p.peek().text == "CONTAINS" {
		p.advance()
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return Filter{}, err
		}
		v, err := p.expect(tokVar, "variable")
		if err != nil {
			return Filter{}, err
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return Filter{}, err
		}
		s, err := p.expect(tokString, "string literal")
		if err != nil {
			return Filter{}, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Filter{}, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: FilterContains, Value: rdf.NewLiteral(s.text)}, nil
	}
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return Filter{}, err
	}
	var op FilterOp
	switch t := p.advance(); t.kind {
	case tokEq:
		op = FilterEq
	case tokNeq:
		op = FilterNeq
	default:
		return Filter{}, fmt.Errorf("sparql: expected comparison operator, got %s", t)
	}
	var val rdf.Term
	switch t := p.advance(); t.kind {
	case tokIRI:
		val = rdf.NewIRI(t.text)
	case tokPName:
		if val, err = expandPName(q, t.text); err != nil {
			return Filter{}, err
		}
	case tokString:
		if val, err = p.literalTail(q, t.text); err != nil {
			return Filter{}, err
		}
	default:
		return Filter{}, fmt.Errorf("sparql: expected term in FILTER, got %s", t)
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Filter{}, err
	}
	return Filter{Var: v.text, Op: op, Value: val}, nil
}

func expandPName(q *Query, pname string) (rdf.Term, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return rdf.Term{}, fmt.Errorf("sparql: malformed prefixed name %q", pname)
	}
	base, ok := q.Prefixes[pname[:i]]
	if !ok {
		return rdf.Term{}, fmt.Errorf("sparql: undeclared prefix %q", pname[:i])
	}
	return rdf.NewIRI(base + pname[i+1:]), nil
}

// validate applies the structural restrictions of the supported subset.
func validate(q *Query) error {
	declared := make(map[string]bool)
	for _, tp := range q.Where {
		if !tp.S.IsVar && tp.S.Term.Kind == rdf.Literal {
			return fmt.Errorf("sparql: literal subject in %s", tp)
		}
		if !tp.P.IsVar && tp.P.Term.Kind != rdf.IRI {
			return fmt.Errorf("sparql: non-IRI bound predicate in %s", tp)
		}
		for _, t := range []PatternTerm{tp.S, tp.P, tp.O} {
			if t.IsVar {
				declared[t.Var] = true
			}
		}
	}
	for _, v := range q.Select {
		if !declared[v] {
			return fmt.Errorf("sparql: selected variable ?%s not used in WHERE", v)
		}
	}
	if q.CountVar != "" {
		if declared[q.CountVar] {
			return fmt.Errorf("sparql: COUNT target ?%s already used in WHERE", q.CountVar)
		}
		if q.Distinct {
			return fmt.Errorf("sparql: DISTINCT with COUNT(*) is unsupported")
		}
	}
	for _, f := range q.Filters {
		if !declared[f.Var] {
			return fmt.Errorf("sparql: filtered variable ?%s not used in WHERE", f.Var)
		}
		if f.Op == FilterContains && f.Value.Kind != rdf.Literal {
			return fmt.Errorf("sparql: CONTAINS needs a string literal")
		}
	}
	return nil
}
