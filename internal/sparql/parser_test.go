package sparql

import (
	"reflect"
	"strings"
	"testing"

	"ntga/internal/rdf"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse(`
PREFIX ex: <http://example.org/>
SELECT ?gene ?go WHERE {
  ?gene ex:xGO ?go .
  ?gene ex:label "retinoid X receptor" .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Select, []string{"gene", "go"}) {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.Where) != 2 {
		t.Fatalf("len(Where) = %d", len(q.Where))
	}
	tp := q.Where[0]
	if !tp.S.IsVar || tp.S.Var != "gene" {
		t.Errorf("S = %v", tp.S)
	}
	if tp.P.IsVar || tp.P.Term != rdf.NewIRI("http://example.org/xGO") {
		t.Errorf("P = %v", tp.P)
	}
	if tp.Unbound() {
		t.Error("bound pattern reported unbound")
	}
	if q.Where[1].O.Term != rdf.NewLiteral("retinoid X receptor") {
		t.Errorf("literal object = %v", q.Where[1].O)
	}
}

func TestParseUnboundProperty(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?s ?p ?o . ?s <http://ex/label> ?l . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 0 {
		t.Errorf("SELECT * should give empty Select, got %v", q.Select)
	}
	if !q.Where[0].Unbound() {
		t.Error("pattern ?s ?p ?o not reported unbound")
	}
	if q.UnboundPatternCount() != 1 {
		t.Errorf("UnboundPatternCount = %d", q.UnboundPatternCount())
	}
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"s", "p", "o", "l"}) {
		t.Errorf("Vars = %v", got)
	}
}

func TestParseFilters(t *testing.T) {
	q, err := Parse(`
PREFIX ex: <http://ex/>
SELECT ?s WHERE {
  ?s ?p ?o .
  FILTER(?o = ex:target)
  FILTER(?p != ex:label)
  FILTER(CONTAINS(?o, "hexokinase"))
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 3 {
		t.Fatalf("len(Filters) = %d", len(q.Filters))
	}
	want := []Filter{
		{Var: "o", Op: FilterEq, Value: rdf.NewIRI("http://ex/target")},
		{Var: "p", Op: FilterNeq, Value: rdf.NewIRI("http://ex/label")},
		{Var: "o", Op: FilterContains, Value: rdf.NewLiteral("hexokinase")},
	}
	if !reflect.DeepEqual(q.Filters, want) {
		t.Errorf("Filters = %v, want %v", q.Filters, want)
	}
}

func TestParseRDFTypeShorthand(t *testing.T) {
	q, err := Parse(`SELECT ?s WHERE { ?s a <http://ex/Scientist> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].P.Term.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Errorf("'a' expanded to %v", q.Where[0].P)
	}
}

func TestParseTypedAndLangLiterals(t *testing.T) {
	q, err := Parse(`
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s WHERE {
  ?s <http://ex/v> "42"^^xsd:integer .
  ?s <http://ex/l> "hi"@en .
  ?s <http://ex/w> "7"^^<http://dt> .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].O.Term != rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer") {
		t.Errorf("typed literal = %v", q.Where[0].O)
	}
	if q.Where[1].O.Term != rdf.NewLangLiteral("hi", "en") {
		t.Errorf("lang literal = %v", q.Where[1].O)
	}
	if q.Where[2].O.Term != rdf.NewTypedLiteral("7", "http://dt") {
		t.Errorf("typed literal = %v", q.Where[2].O)
	}
}

func TestParseDistinct(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?s WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
}

func TestParseConstantSubject(t *testing.T) {
	q, err := Parse(`SELECT ?p ?o WHERE { <http://ex/hexokinase> ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].S.IsVar {
		t.Error("constant subject parsed as variable")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ``},
		{"no select", `WHERE { ?s ?p ?o . }`},
		{"no where", `SELECT ?s { ?s ?p ?o . }`},
		{"empty where", `SELECT * WHERE { }`},
		{"missing dot", `SELECT * WHERE { ?s ?p ?o }`},
		{"unterminated", `SELECT * WHERE { ?s ?p ?o .`},
		{"undeclared prefix", `SELECT * WHERE { ?s ex:p ?o . }`},
		{"literal subject", `SELECT * WHERE { "lit" <http://p> ?o . }`},
		{"literal predicate", `SELECT * WHERE { ?s "p" ?o . }`},
		{"select unknown var", `SELECT ?zzz WHERE { ?s ?p ?o . }`},
		{"filter unknown var", `SELECT * WHERE { ?s ?p ?o . FILTER(?zzz = <http://x>) }`},
		{"contains non-literal", `SELECT * WHERE { ?s ?p ?o . FILTER(CONTAINS(?o, <http://x>)) }`},
		{"trailing garbage", `SELECT * WHERE { ?s ?p ?o . } extra`},
		{"unterminated iri", `SELECT * WHERE { ?s <http:x ?o . }`},
		{"unterminated string", `SELECT * WHERE { ?s <http://p> "x . }`},
		{"bad filter op", `SELECT * WHERE { ?s ?p ?o . FILTER(?o < 3) }`},
		{"empty var", `SELECT ? WHERE { ?s ?p ?o . }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.src)
			}
		})
	}
}

func TestQueryStringRoundtrip(t *testing.T) {
	src := `
PREFIX ex: <http://ex/>
SELECT ?s ?o WHERE {
  ?s ex:knows ?o .
  ?s ?p ?x .
  FILTER(?x = "val")
  FILTER(CONTAINS(?o, "sub"))
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if !reflect.DeepEqual(q.Where, q2.Where) || !reflect.DeepEqual(q.Filters, q2.Filters) ||
		!reflect.DeepEqual(q.Select, q2.Select) {
		t.Errorf("roundtrip mismatch:\n%v\nvs\n%v", q, q2)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("not sparql")
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	q, err := Parse(`
# leading comment
SELECT ?s   # trailing comment
WHERE {
  # pattern comment
  ?s <http://p> ?o .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 {
		t.Errorf("len(Where) = %d", len(q.Where))
	}
}

func TestFilterOpString(t *testing.T) {
	if FilterEq.String() != "=" || FilterNeq.String() != "!=" || FilterContains.String() != "CONTAINS" {
		t.Error("FilterOp.String mismatch")
	}
	if !strings.Contains(FilterOp(9).String(), "9") {
		t.Error("unknown FilterOp should include the number")
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse(`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsCount() || q.CountVar != "n" {
		t.Errorf("CountVar = %q, IsCount = %v", q.CountVar, q.IsCount())
	}
	// Roundtrips through String().
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.CountVar != "n" {
		t.Errorf("roundtrip CountVar = %q", q2.CountVar)
	}
}

func TestParseCountErrors(t *testing.T) {
	cases := []string{
		`SELECT (COUNT(*) AS ?s) WHERE { ?s ?p ?o . }`,          // AS var reused
		`SELECT DISTINCT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`, // distinct+count
		`SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o . }`,         // COUNT(?v) unsupported
		`SELECT (COUNT(*) AS ?n WHERE { ?s ?p ?o . }`,           // missing paren
		`SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o . }`,            // unknown aggregate
		`SELECT (COUNT(*) ?n) WHERE { ?s ?p ?o . }`,             // missing AS
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseFilterSyntaxErrors(t *testing.T) {
	cases := []string{
		`SELECT * WHERE { ?s ?p ?o . FILTER ?o = <http://x> }`,     // missing (
		`SELECT * WHERE { ?s ?p ?o . FILTER(?o = <http://x> }`,     // missing )
		`SELECT * WHERE { ?s ?p ?o . FILTER(<http://x> = ?o) }`,    // non-var lhs
		`SELECT * WHERE { ?s ?p ?o . FILTER(?o = ) }`,              // missing term
		`SELECT * WHERE { ?s ?p ?o . FILTER(CONTAINS ?o, "x") }`,   // missing (
		`SELECT * WHERE { ?s ?p ?o . FILTER(CONTAINS(?o "x")) }`,   // missing comma
		`SELECT * WHERE { ?s ?p ?o . FILTER(CONTAINS(?o, "x") }`,   // missing )
		`SELECT * WHERE { ?s ?p ?o . FILTER(?o = ex:undeclared) }`, // bad prefix
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
