package sparql

import (
	"fmt"
	"strings"

	"ntga/internal/rdf"
)

// PatternTerm is one position of a triple pattern: either a variable or a
// concrete RDF term.
type PatternTerm struct {
	IsVar bool
	Var   string   // variable name without '?', set when IsVar
	Term  rdf.Term // set when !IsVar
}

// Variable returns a variable pattern term.
func Variable(name string) PatternTerm { return PatternTerm{IsVar: true, Var: name} }

// Constant returns a concrete pattern term.
func Constant(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

func (p PatternTerm) String() string {
	if p.IsVar {
		return "?" + p.Var
	}
	return p.Term.String()
}

// TriplePattern is one pattern of a basic graph pattern. A variable in the
// P position makes it an unbound-property triple pattern.
type TriplePattern struct {
	S, P, O PatternTerm
}

// Unbound reports whether the pattern has an unbound (variable) property.
func (tp TriplePattern) Unbound() bool { return tp.P.IsVar }

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// FilterOp is a FILTER comparison operator.
type FilterOp int

// Supported filter operators.
const (
	FilterEq FilterOp = iota
	FilterNeq
	FilterContains
)

func (op FilterOp) String() string {
	switch op {
	case FilterEq:
		return "="
	case FilterNeq:
		return "!="
	case FilterContains:
		return "CONTAINS"
	default:
		return fmt.Sprintf("FilterOp(%d)", int(op))
	}
}

// Filter constrains one variable: ?Var op Value. CONTAINS compares the
// lexical form of the bound term against a substring.
type Filter struct {
	Var   string
	Op    FilterOp
	Value rdf.Term
}

func (f Filter) String() string {
	if f.Op == FilterContains {
		return fmt.Sprintf("FILTER(CONTAINS(?%s, %s))", f.Var, f.Value)
	}
	return fmt.Sprintf("FILTER(?%s %s %s)", f.Var, f.Op, f.Value)
}

// Query is a parsed SPARQL SELECT query.
type Query struct {
	Prefixes map[string]string
	// Select lists projected variable names; empty means SELECT *.
	Select   []string
	Distinct bool
	// CountVar, when non-empty, makes this an aggregation query
	// SELECT (COUNT(*) AS ?CountVar): the result is the number of solution
	// rows of the WHERE clause. The paper lists aggregation constraints
	// over unbound-property queries as future work; the NTGA engines
	// answer these without β-unnesting (counting the implicit expansions).
	CountVar string
	Where    []TriplePattern
	Filters  []Filter
}

// IsCount reports whether the query is a COUNT(*) aggregation.
func (q *Query) IsCount() bool { return q.CountVar != "" }

// Vars returns all variables mentioned in the WHERE clause, in first-use
// order.
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(t PatternTerm) {
		if t.IsVar && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	for _, tp := range q.Where {
		add(tp.S)
		add(tp.P)
		add(tp.O)
	}
	return out
}

// UnboundPatternCount reports how many WHERE patterns have an unbound
// property.
func (q *Query) UnboundPatternCount() int {
	n := 0
	for _, tp := range q.Where {
		if tp.Unbound() {
			n++
		}
	}
	return n
}

// String renders the query in parseable SPARQL.
func (q *Query) String() string {
	var sb strings.Builder
	for p, iri := range q.Prefixes {
		fmt.Fprintf(&sb, "PREFIX %s: <%s>\n", p, iri)
	}
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if q.IsCount() {
		sb.WriteString("(COUNT(*) AS ?" + q.CountVar + ")")
	} else if len(q.Select) == 0 {
		sb.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString("?" + v)
		}
	}
	sb.WriteString(" WHERE {\n")
	for _, tp := range q.Where {
		sb.WriteString("  " + tp.String() + "\n")
	}
	for _, f := range q.Filters {
		sb.WriteString("  " + f.String() + "\n")
	}
	sb.WriteString("}")
	return sb.String()
}
