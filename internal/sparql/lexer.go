// Package sparql parses the subset of SPARQL needed to express every query
// in the paper's evaluation: SELECT queries over basic graph patterns with
// variables in any triple position (a variable in the predicate position is
// an unbound-property triple pattern), PREFIX declarations, and FILTER
// constraints of the forms FILTER(?v = term), FILTER(?v != term) and
// FILTER(CONTAINS(?v, "substring")).
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar    // ?name
	tokIRI    // <...>
	tokPName  // prefix:local
	tokString // "..."
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokDot
	tokComma
	tokStar
	tokEq
	tokNeq
	tokLang  // @tag (after a string)
	tokDTSep // ^^
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front; SPARQL queries are small.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	line := 1 + strings.Count(l.src[:l.pos], "\n")
	return fmt.Errorf("sparql: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case c == '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case c == '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return token{tokNeq, "!=", start}, nil
		}
		return token{}, l.errf("unexpected '!'")
	case c == '^':
		if strings.HasPrefix(l.src[l.pos:], "^^") {
			l.pos += 2
			return token{tokDTSep, "^^", start}, nil
		}
		return token{}, l.errf("unexpected '^'")
	case c == '?' || c == '$':
		l.pos++
		name := l.ident()
		if name == "" {
			return token{}, l.errf("empty variable name")
		}
		return token{tokVar, name, start}, nil
	case c == '<':
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			return token{}, l.errf("unterminated IRI")
		}
		iri := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		return token{tokIRI, iri, start}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				return token{tokString, sb.String(), start}, nil
			}
			if ch == '\\' {
				if l.pos+1 >= len(l.src) {
					return token{}, l.errf("dangling escape")
				}
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return token{}, l.errf("unsupported escape \\%c", l.src[l.pos])
				}
				l.pos++
				continue
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{}, l.errf("unterminated string literal")
	case c == '@':
		l.pos++
		tag := l.ident()
		if tag == "" {
			return token{}, l.errf("empty language tag")
		}
		return token{tokLang, tag, start}, nil
	case isIdentStart(rune(c)):
		word := l.ident()
		// prefix:local (possibly with empty prefix handled below)
		if l.pos < len(l.src) && l.src[l.pos] == ':' {
			l.pos++
			local := l.ident()
			return token{tokPName, word + ":" + local, start}, nil
		}
		up := strings.ToUpper(word)
		switch up {
		case "SELECT", "WHERE", "PREFIX", "FILTER", "CONTAINS", "DISTINCT", "A", "COUNT", "AS":
			return token{tokKeyword, up, start}, nil
		}
		return token{}, l.errf("unexpected identifier %q", word)
	case c == ':':
		// PName with empty prefix, e.g. ":local".
		l.pos++
		local := l.ident()
		return token{tokPName, ":" + local, start}, nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

// ident consumes [A-Za-z0-9_-]* starting at the current position.
func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if !isIdentStart(r) && !unicode.IsDigit(r) && r != '-' {
			break
		}
		l.pos++
	}
	return l.src[start:l.pos]
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || unicode.IsDigit(r)
}
