// Benchmark harness: one testing.B target per figure/table of the paper's
// evaluation section, plus per-query micro-benchmarks contrasting the
// engines on representative workloads. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times are simulation times on the in-process MapReduce engine;
// the paper's comparisons are reproduced as the *relative* ordering of the
// engines and the reported byte metrics (printed by cmd/ntga-bench).
package ntga_test

import (
	"fmt"
	"testing"

	"ntga/internal/bench"
	"ntga/internal/engine"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFigure(id, bench.Options{})
		if err != nil {
			b.Fatalf("RunFigure(%s): %v", id, err)
		}
		if len(rep.Tables) == 0 {
			b.Fatalf("figure %s produced no tables", id)
		}
	}
}

// One benchmark per paper figure.

func BenchmarkFig3_CaseStudy(b *testing.B)            { benchFigure(b, "fig3") }
func BenchmarkFig9a_Rep2CapacityLimited(b *testing.B) { benchFigure(b, "fig9a") }
func BenchmarkFig9aText_TextWire(b *testing.B)        { benchFigure(b, "fig9a-text") }
func BenchmarkFig9b_Rep1(b *testing.B)                { benchFigure(b, "fig9b") }
func BenchmarkFig9c_VaryingArity(b *testing.B)        { benchFigure(b, "fig9c") }
func BenchmarkFig10_HDFSWrites(b *testing.B)          { benchFigure(b, "fig10") }
func BenchmarkFig11_UnnestStrategies(b *testing.B)    { benchFigure(b, "fig11") }
func BenchmarkFig12_BSBM1M(b *testing.B)              { benchFigure(b, "fig12") }
func BenchmarkFig13_Bio2RDF(b *testing.B)             { benchFigure(b, "fig13") }
func BenchmarkFig14_InfoboxBTC(b *testing.B)          { benchFigure(b, "fig14") }

// Ablation benches (design-choice sweeps called out in DESIGN.md).

func BenchmarkAblation_PhiM(b *testing.B)         { benchFigure(b, "abl-phim") }
func BenchmarkAblation_Aggregation(b *testing.B)  { benchFigure(b, "abl-agg") }
func BenchmarkAblation_Multiplicity(b *testing.B) { benchFigure(b, "abl-mult") }
func BenchmarkAblation_Replication(b *testing.B)  { benchFigure(b, "abl-repl") }
func BenchmarkAblation_Selectivity(b *testing.B)  { benchFigure(b, "abl-select") }
func BenchmarkAblation_ScanSharing(b *testing.B)  { benchFigure(b, "abl-share") }

// Per-engine micro-benchmarks on representative queries: B1 (join on an
// unbound pattern's object), B4 (non-joining unbound pattern), A4
// (two-star exploration with high-multiplicity properties), C4 (unbound in
// each star). These isolate single query executions so -benchmem reflects
// one workflow.

func benchQuery(b *testing.B, dataset, queryID, engineName string) {
	b.Helper()
	g, err := bench.Dataset(dataset, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	cq, err := bench.Lookup(queryID)
	if err != nil {
		b.Fatal(err)
	}
	engines := bench.AllEnginesScaled(1)
	var eng engine.QueryEngine
	for _, e := range engines {
		if e.Name() == engineName {
			eng = e
		}
	}
	if eng == nil {
		b.Fatalf("engine %s not in line-up", engineName)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr, err := bench.RunQuery(bench.ClusterSpec{}, g, cq, []engine.QueryEngine{eng})
		if err != nil {
			b.Fatal(err)
		}
		if !qr.Runs[0].OK {
			b.Fatalf("%s failed: %s", engineName, qr.Runs[0].Err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	cases := []struct {
		dataset, query string
	}{
		{"bsbm", "B1"},
		{"bsbm", "B4"},
		{"lifesci", "A4"},
		{"infobox", "C4"},
	}
	for _, c := range cases {
		for _, eng := range []string{"Pig", "Hive", "NTGA-Eager", "NTGA-Lazy"} {
			b.Run(fmt.Sprintf("%s/%s", c.query, eng), func(b *testing.B) {
				benchQuery(b, c.dataset, c.query, eng)
			})
		}
	}
}

// Dataset generation benches (the substrate's own cost).

func BenchmarkDatagen(b *testing.B) {
	for _, name := range []string{"bsbm", "lifesci", "infobox"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := bench.Dataset(name, 1, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if g.Len() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}
