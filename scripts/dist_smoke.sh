#!/bin/sh
# dist_smoke.sh — end-to-end smoke test of true distributed execution:
# build the binaries, generate a dataset, boot an ntga-master and two
# ntga-worker processes, run a catalog-style query through ntga-run
# -cluster, kill -9 one worker while a second (stretched) query is mid
# flight, and assert the run still completes with output byte-identical to
# a local ntga-run. Exits non-zero on any failed step.
set -eu

ADDR="${DIST_SMOKE_ADDR:-127.0.0.1:7455}"
WORK="$(mktemp -d)"
MASTER_PID=""
W1_PID=""
W2_PID=""
cleanup() {
    for p in "$MASTER_PID" "$W1_PID" "$W2_PID"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/ntga-master" ./cmd/ntga-master
go build -o "$WORK/ntga-worker" ./cmd/ntga-worker
go build -o "$WORK/ntga-run" ./cmd/ntga-run
go build -o "$WORK/ntga-datagen" ./cmd/ntga-datagen

echo "== dataset"
"$WORK/ntga-datagen" -dataset lifesci -scale 2 -seed 42 -out "$WORK/bio.nt"

echo "== boot master on $ADDR + 2 workers"
# A leftover master on the port would answer our readiness probes and
# wreck every assertion below; insist on a fresh cluster.
if "$WORK/ntga-run" -cluster "$ADDR" -cluster-status >/dev/null 2>&1; then
    echo "something already answers on $ADDR; kill it or set DIST_SMOKE_ADDR" >&2
    exit 1
fi
"$WORK/ntga-master" -data "$WORK/bio.nt" -addr "$ADDR" 2>"$WORK/master.log" &
MASTER_PID=$!
i=0
until "$WORK/ntga-run" -cluster "$ADDR" -cluster-status >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "master never came up; log:" >&2
        cat "$WORK/master.log" >&2
        exit 1
    fi
    kill -0 "$MASTER_PID" 2>/dev/null || {
        echo "master died; log:" >&2
        cat "$WORK/master.log" >&2
        exit 1
    }
    sleep 0.2
done
# -task-delay stretches each task so the mid-run kill below lands while
# work is genuinely in flight.
"$WORK/ntga-worker" -master "$ADDR" -task-delay 25ms 2>"$WORK/w1.log" &
W1_PID=$!
"$WORK/ntga-worker" -master "$ADDR" -task-delay 25ms 2>"$WORK/w2.log" &
W2_PID=$!
i=0
until "$WORK/ntga-run" -cluster "$ADDR" -cluster-status | grep -q "workers: 2 alive / 2 registered"; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "workers never registered; status:" >&2
        "$WORK/ntga-run" -cluster "$ADDR" -cluster-status >&2 || true
        cat "$WORK/w1.log" "$WORK/w2.log" >&2
        exit 1
    fi
    sleep 0.2
done
"$WORK/ntga-run" -cluster "$ADDR" -cluster-status

cat >"$WORK/q.rq" <<'EOF'
PREFIX bio: <http://bio2rdf.example.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT * WHERE {
  ?g rdf:type bio:Gene . ?g bio:label ?l . ?g ?p ?x .
  FILTER(CONTAINS(?x, "go"))
}
EOF

echo "== distributed query vs local run (expect byte-identical stdout)"
"$WORK/ntga-run" -cluster "$ADDR" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 128 >"$WORK/dist.out"
"$WORK/ntga-run" -data "$WORK/bio.nt" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 128 >"$WORK/local.out"
diff "$WORK/local.out" "$WORK/dist.out" || {
    echo "distributed output differs from local run" >&2
    exit 1
}

echo "== kill one worker mid-run (expect recovery, same output)"
# Tiny splits make this a many-task job; the kill lands while it runs.
"$WORK/ntga-run" -cluster "$ADDR" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 64 >"$WORK/dist2.out" &
RUN_PID=$!
sleep 0.7
kill -9 "$W2_PID"
W2_PID=""
wait "$RUN_PID" || {
    echo "query did not survive the worker kill; master log:" >&2
    tail -20 "$WORK/master.log" >&2
    exit 1
}
"$WORK/ntga-run" -data "$WORK/bio.nt" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 64 >"$WORK/local2.out"
diff "$WORK/local2.out" "$WORK/dist2.out" || {
    echo "post-kill distributed output differs from local run" >&2
    exit 1
}

echo "== master noticed the loss"
# The master declares the worker dead after its heartbeat timeout (2s);
# poll until the sweep fires.
i=0
until STATUS="$("$WORK/ntga-run" -cluster "$ADDR" -cluster-status)" &&
    echo "$STATUS" | grep -q "workers_lost=1"; do
    i=$((i + 1))
    if [ "$i" -ge 20 ]; then
        echo "master never declared the killed worker lost:" >&2
        echo "$STATUS" >&2
        exit 1
    fi
    sleep 0.5
done
echo "$STATUS"
echo "$STATUS" | grep -q "workers: 1 alive / 2 registered" || {
    echo "unexpected worker liveness after kill" >&2
    exit 1
}

echo "dist-smoke: OK"
