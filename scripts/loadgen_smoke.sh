#!/bin/sh
# loadgen_smoke.sh — end-to-end smoke test of the trace-replay load
# harness: build ntga-loadgen, replay a short seeded trace in-process with
# -verify (every OK response byte-checked against a serial reference),
# assert non-zero throughput and zero diffs, then repeat over HTTP against
# a live ntga-serve daemon running with adaptive admission. Exits non-zero
# on any failed step.
set -eu

ADDR="${LOADGEN_SMOKE_ADDR:-127.0.0.1:7461}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/ntga-loadgen" ./cmd/ntga-loadgen
go build -o "$WORK/ntga-serve" ./cmd/ntga-serve
go build -o "$WORK/ntga-datagen" ./cmd/ntga-datagen
go build -o "$WORK/ntga-run" ./cmd/ntga-run

echo "== in-process replay: 400 requests, 16 clients, 20% cache busters, verify on"
"$WORK/ntga-loadgen" -dataset bsbm -scale 1 -requests 400 -clients 16 \
    -cold 0.2 -trace-seed 7 -verify -json >"$WORK/inproc.json"
grep -q '"diffs":0' "$WORK/inproc.json" || {
    echo "in-process replay reported diffs: $(cat "$WORK/inproc.json")" >&2
    exit 1
}
grep -q '"ok":400' "$WORK/inproc.json" || {
    echo "in-process replay did not answer all 400 requests: $(cat "$WORK/inproc.json")" >&2
    exit 1
}
# qps must be a real (non-zero) number.
grep -q '"qps":0,' "$WORK/inproc.json" && {
    echo "in-process replay measured zero qps: $(cat "$WORK/inproc.json")" >&2
    exit 1
}

echo "== determinism: same seed twice must yield identical outcome counts"
"$WORK/ntga-loadgen" -dataset bsbm -scale 1 -requests 200 -clients 8 \
    -cold 0.5 -trace-seed 11 -json | sed 's/.*"outcomes":\({[^}]*}\).*/\1/' >"$WORK/a.txt"
"$WORK/ntga-loadgen" -dataset bsbm -scale 1 -requests 200 -clients 8 \
    -cold 0.5 -trace-seed 11 -json | sed 's/.*"outcomes":\({[^}]*}\).*/\1/' >"$WORK/b.txt"
cmp "$WORK/a.txt" "$WORK/b.txt" || {
    echo "same trace seed produced different outcome counts" >&2
    exit 1
}

echo "== boot daemon with adaptive admission on $ADDR"
"$WORK/ntga-datagen" -dataset bsbm -scale 1 -seed 42 -out "$WORK/bsbm.nt"
"$WORK/ntga-serve" -data "$WORK/bsbm.nt" -addr "$ADDR" \
    -max-inflight 8 -max-queue 256 -adaptive-target 50ms 2>"$WORK/serve.log" &
SERVE_PID=$!
i=0
until "$WORK/ntga-run" -health "$ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "daemon never became healthy; log:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "daemon died; log:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.2
done

echo "== HTTP replay against the daemon, verify on"
"$WORK/ntga-loadgen" -server "$ADDR" -requests 200 -clients 8 \
    -cold 0.2 -trace-seed 13 -verify -json >"$WORK/http.json"
grep -q '"diffs":0' "$WORK/http.json" || {
    echo "HTTP replay reported diffs: $(cat "$WORK/http.json")" >&2
    exit 1
}
grep -q '"ok":200' "$WORK/http.json" || {
    echo "HTTP replay did not answer all 200 requests: $(cat "$WORK/http.json")" >&2
    exit 1
}

echo "== daemon metrics expose the adaptive admission policy and queue waits"
METRICS="$(curl -sf "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '"policy": *"adaptive"' || {
    echo "metrics missing adaptive admission policy: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"queue_wait"' || {
    echo "metrics missing queue_wait rollup: $METRICS" >&2
    exit 1
}

echo "loadgen-smoke: OK"
