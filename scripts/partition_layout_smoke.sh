#!/bin/sh
# partition_layout_smoke.sh — end-to-end smoke test of the bucketed data
# layout: generate a dataset, run a repeat-joined O-S chain query once over
# the flat triple file and once with -partition-buckets (which builds the
# hash-of-subject layout, then takes the map-only plan), assert the
# partitioned workflow moved ZERO shuffle bytes, and assert the two runs'
# sorted row output is byte-identical. Exits non-zero on any failed step.
set -eu

WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT INT TERM

cd "$(dirname "$0")/.."

echo "== build"
go build -o "$WORK/ntga-run" ./cmd/ntga-run
go build -o "$WORK/ntga-datagen" ./cmd/ntga-datagen

echo "== dataset"
"$WORK/ntga-datagen" -dataset bsbm -scale 2 -seed 42 -out "$WORK/bsbm.nt"

# Q1a's shape: two stars chained on an O-S join — the repeat-joined key is
# the subject hash the layout is bucketed on, so the whole chain is served
# map-side.
QUERY='PREFIX bsbm: <http://bsbm.example.org/>
SELECT * WHERE {
  ?prod bsbm:label ?l . ?prod bsbm:producer ?pr .
  ?pr bsbm:label ?prl . ?pr bsbm:country ?c .
}'

echo "== flat run (shuffle path)"
"$WORK/ntga-run" -data "$WORK/bsbm.nt" -e "$QUERY" -metrics >"$WORK/flat.out" 2>"$WORK/flat.err"

echo "== partitioned run (load layout, then map-only)"
"$WORK/ntga-run" -data "$WORK/bsbm.nt" -e "$QUERY" -partition-buckets 8 -metrics \
    >"$WORK/part.out" 2>"$WORK/part.err"

grep -q "partition: built layout" "$WORK/part.err" || {
    echo "FAIL: partitioned run never built the layout; stderr:" >&2
    cat "$WORK/part.err" >&2
    exit 1
}

# ntga-run prints rows on stdout and the metrics table on stderr; the
# TOTAL row's 4th column is the workflow's shuffle bytes.
flat_shuffle="$(awk '$1 == "TOTAL" { print $4 }' "$WORK/flat.err")"
part_shuffle="$(awk '$1 == "TOTAL" { print $4 }' "$WORK/part.err")"
echo "   flat shuffle: $flat_shuffle, partitioned shuffle: $part_shuffle"
if [ "$flat_shuffle" = "0B" ] || [ -z "$flat_shuffle" ]; then
    echo "FAIL: flat baseline moved no shuffle bytes ($flat_shuffle); the smoke test is vacuous" >&2
    exit 1
fi
if [ "$part_shuffle" != "0B" ]; then
    echo "FAIL: partitioned run shuffled $part_shuffle, want 0B" >&2
    cat "$WORK/part.out" >&2
    exit 1
fi

echo "== byte-diff sorted rows"
# Strip the metrics preamble: rows start at the tab-separated header line.
rows() { sed -n '/^?prod\t/,$p' "$1" | sort; }
rows "$WORK/flat.out" >"$WORK/flat.rows"
rows "$WORK/part.out" >"$WORK/part.rows"
if [ ! -s "$WORK/flat.rows" ]; then
    echo "FAIL: no rows captured from the flat run" >&2
    exit 1
fi
if ! diff -u "$WORK/flat.rows" "$WORK/part.rows"; then
    echo "FAIL: partitioned rows differ from flat rows" >&2
    exit 1
fi

echo "partition-layout-smoke: OK ($(wc -l <"$WORK/flat.rows") row lines byte-identical, shuffle $flat_shuffle -> 0B)"
