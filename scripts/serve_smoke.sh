#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the resident query daemon:
# build the binaries, generate a small dataset, boot ntga-serve, wait for
# /healthz, run the same query twice over HTTP (the second call must be a
# result-cache hit with zero MR cycles), exercise the ntga-run client mode,
# and shut the daemon down. Exits non-zero on any failed step.
set -eu

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:7457}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/ntga-serve" ./cmd/ntga-serve
go build -o "$WORK/ntga-run" ./cmd/ntga-run
go build -o "$WORK/ntga-datagen" ./cmd/ntga-datagen

echo "== dataset"
"$WORK/ntga-datagen" -dataset lifesci -scale 1 -seed 42 -out "$WORK/bio.nt"

echo "== boot daemon on $ADDR"
"$WORK/ntga-serve" -data "$WORK/bio.nt" -addr "$ADDR" 2>"$WORK/serve.log" &
SERVE_PID=$!

echo "== wait for /healthz"
i=0
until "$WORK/ntga-run" -health "$ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "daemon never became healthy; log:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "daemon died; log:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.2
done
"$WORK/ntga-run" -health "$ADDR"

QUERY='{"query":"PREFIX bio: <http://bio2rdf.example.org/> SELECT * WHERE { ?g bio:label ?l . ?g ?p ?x . }"}'

echo "== first query (expect cache miss, real MR cycles)"
FIRST="$(curl -sf -X POST "http://$ADDR/query" -d "$QUERY")"
echo "$FIRST" | grep -q '"cache": *"miss"' || {
    echo "first call was not a cache miss: $FIRST" >&2
    exit 1
}
echo "$FIRST" | grep -q '"cycles": *0,' && {
    echo "first call ran zero MR cycles: $FIRST" >&2
    exit 1
}

echo "== second query (expect cache hit, zero MR cycles)"
SECOND="$(curl -sf -X POST "http://$ADDR/query" -d "$QUERY")"
echo "$SECOND" | grep -q '"cache": *"hit"' || {
    echo "second call was not a cache hit: $SECOND" >&2
    exit 1
}
echo "$SECOND" | grep -q '"cycles": *0,' || {
    echo "cache hit reported MR cycles: $SECOND" >&2
    exit 1
}

echo "== client mode (ntga-run -server)"
"$WORK/ntga-run" -server "$ADDR" -e 'PREFIX bio: <http://bio2rdf.example.org/>
SELECT * WHERE { ?g bio:organism ?o . ?g ?p ?x . }' >/dev/null

echo "== metrics sanity"
METRICS="$(curl -sf "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '"queries": *[0-9]' || {
    echo "metrics missing query counter: $METRICS" >&2
    exit 1
}

echo "serve-smoke: OK"
