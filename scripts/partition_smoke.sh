#!/bin/sh
# partition_smoke.sh — end-to-end smoke test of network-partition tolerance:
# build the binaries, boot an ntga-master and two ntga-worker processes (one
# armed with seeded wire chaos and a scripted mid-run partition from the
# master), run a stretched query through the partition window, and assert it
# completes byte-identical to a local run. Then kill -9 the master, restart
# it on the same address, and assert both workers re-register and the
# cluster answers queries again. Exits non-zero on any failed step.
set -eu

ADDR="${PARTITION_SMOKE_ADDR:-127.0.0.1:7456}"
WORK="$(mktemp -d)"
MASTER_PID=""
W1_PID=""
W2_PID=""
cleanup() {
    for p in "$MASTER_PID" "$W1_PID" "$W2_PID"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/ntga-master" ./cmd/ntga-master
go build -o "$WORK/ntga-worker" ./cmd/ntga-worker
go build -o "$WORK/ntga-run" ./cmd/ntga-run
go build -o "$WORK/ntga-datagen" ./cmd/ntga-datagen

echo "== dataset"
"$WORK/ntga-datagen" -dataset lifesci -scale 2 -seed 42 -out "$WORK/bio.nt"

echo "== boot master on $ADDR + 2 workers (w2 chaos-armed)"
if "$WORK/ntga-run" -cluster "$ADDR" -cluster-status >/dev/null 2>&1; then
    echo "something already answers on $ADDR; kill it or set PARTITION_SMOKE_ADDR" >&2
    exit 1
fi
"$WORK/ntga-master" -data "$WORK/bio.nt" -addr "$ADDR" 2>"$WORK/master.log" &
MASTER_PID=$!
i=0
until "$WORK/ntga-run" -cluster "$ADDR" -cluster-status >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "master never came up; log:" >&2
        cat "$WORK/master.log" >&2
        exit 1
    fi
    kill -0 "$MASTER_PID" 2>/dev/null || {
        echo "master died; log:" >&2
        cat "$WORK/master.log" >&2
        exit 1
    }
    sleep 0.2
done
# w1 is a plain worker; w2 runs behind the seeded chaos transport (dropped
# dials + delayed messages the retry layer must absorb) and cuts itself off
# from the master 2s in, for 3s — mid-query, given the stretched run below.
"$WORK/ntga-worker" -master "$ADDR" -task-delay 100ms 2>"$WORK/w1.log" &
W1_PID=$!
"$WORK/ntga-worker" -master "$ADDR" -task-delay 100ms \
    -chaos-seed 42 -chaos-drop 0.05 -chaos-delay-rate 0.10 -chaos-delay 5ms \
    -partition-master-after 2s -partition-master-for 3s 2>"$WORK/w2.log" &
W2_PID=$!
i=0
until "$WORK/ntga-run" -cluster "$ADDR" -cluster-status | grep -q "workers: 2 alive / 2 registered"; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "workers never registered; status:" >&2
        "$WORK/ntga-run" -cluster "$ADDR" -cluster-status >&2 || true
        cat "$WORK/w1.log" "$WORK/w2.log" >&2
        exit 1
    fi
    sleep 0.2
done
"$WORK/ntga-run" -cluster "$ADDR" -cluster-status

cat >"$WORK/q.rq" <<'EOF'
PREFIX bio: <http://bio2rdf.example.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT * WHERE {
  ?g rdf:type bio:Gene . ?g bio:label ?l . ?g ?p ?x .
  FILTER(CONTAINS(?x, "go"))
}
EOF

echo "== query through the partition window (expect recovery, local-identical output)"
# Tiny splits + task delay stretch the run past w2's partition window, so
# the cut lands while work is genuinely in flight.
"$WORK/ntga-run" -cluster "$ADDR" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 64 >"$WORK/dist.out" || {
    echo "query did not survive the partition; master log:" >&2
    tail -20 "$WORK/master.log" >&2
    tail -20 "$WORK/w2.log" >&2
    exit 1
}
"$WORK/ntga-run" -data "$WORK/bio.nt" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 64 >"$WORK/local.out"
diff "$WORK/local.out" "$WORK/dist.out" || {
    echo "partitioned-run output differs from local run" >&2
    exit 1
}

echo "== master noticed the partition"
# The 3s partition outlasts the master's 2s heartbeat timeout: w2 must be
# declared lost (workers_lost is cumulative, so the observation sticks).
i=0
until STATUS="$("$WORK/ntga-run" -cluster "$ADDR" -cluster-status)" &&
    echo "$STATUS" | grep -q "workers_lost=[1-9]"; do
    i=$((i + 1))
    if [ "$i" -ge 30 ]; then
        echo "master never declared the partitioned worker lost; status:" >&2
        echo "$STATUS" >&2
        cat "$WORK/w2.log" >&2
        exit 1
    fi
    sleep 0.5
done

echo "== fleet healed after the partition window"
i=0
until STATUS="$("$WORK/ntga-run" -cluster "$ADDR" -cluster-status)" &&
    echo "$STATUS" | grep -q "workers: 2 alive / 2 registered"; do
    i=$((i + 1))
    if [ "$i" -ge 30 ]; then
        echo "fleet never healed; status:" >&2
        echo "$STATUS" >&2
        cat "$WORK/w2.log" >&2
        exit 1
    fi
    sleep 0.5
done
echo "$STATUS"
echo "$STATUS" | grep -q "rpc_retries=0 " && {
    echo "chaos + partition produced zero RPC retries; the retry layer never engaged" >&2
    exit 1
}

echo "== kill -9 the master, restart on the same address"
kill -9 "$MASTER_PID"
MASTER_PID=""
"$WORK/ntga-master" -data "$WORK/bio.nt" -addr "$ADDR" 2>"$WORK/master2.log" &
MASTER_PID=$!
# The restarted master starts with an empty worker table; both workers must
# notice the loss and re-register on their own.
i=0
until STATUS="$("$WORK/ntga-run" -cluster "$ADDR" -cluster-status 2>/dev/null)" &&
    echo "$STATUS" | grep -q "workers: 2 alive / 2 registered"; do
    i=$((i + 1))
    if [ "$i" -ge 60 ]; then
        echo "workers never re-registered with the restarted master; status:" >&2
        echo "$STATUS" >&2
        cat "$WORK/master2.log" "$WORK/w1.log" "$WORK/w2.log" >&2
        exit 1
    fi
    kill -0 "$MASTER_PID" 2>/dev/null || {
        echo "restarted master died; log:" >&2
        cat "$WORK/master2.log" >&2
        exit 1
    }
    sleep 0.5
done
echo "$STATUS"
echo "$STATUS" | grep -q "worker_reregistrations=0" && {
    echo "restarted master recorded zero re-registrations" >&2
    exit 1
}

echo "== post-restart query (expect local-identical output)"
"$WORK/ntga-run" -cluster "$ADDR" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 128 >"$WORK/dist2.out" || {
    echo "query failed after master restart; master log:" >&2
    tail -20 "$WORK/master2.log" >&2
    exit 1
}
"$WORK/ntga-run" -data "$WORK/bio.nt" -query "$WORK/q.rq" -engine ntga-lazy \
    -reducers 4 -split-records 128 >"$WORK/local2.out"
diff "$WORK/local2.out" "$WORK/dist2.out" || {
    echo "post-restart output differs from local run" >&2
    exit 1
}

echo "partition-smoke: OK"
