#!/bin/sh
# ingest_smoke.sh — end-to-end smoke test of the incremental write path:
# build the binaries, boot ntga-serve on a generated dataset, prime the
# result cache with an affected and an unaffected query, POST a delta batch
# through ntga-ingest, verify the unaffected entry survives (cache hit, zero
# MR cycles) while the affected query re-executes and sees the delta rows,
# then fold the chain with delta-merge compaction and verify the servable
# content is unchanged. Exits non-zero on any failed step.
set -eu

ADDR="${INGEST_SMOKE_ADDR:-127.0.0.1:7459}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/ntga-serve" ./cmd/ntga-serve
go build -o "$WORK/ntga-run" ./cmd/ntga-run
go build -o "$WORK/ntga-ingest" ./cmd/ntga-ingest
go build -o "$WORK/ntga-datagen" ./cmd/ntga-datagen

echo "== dataset"
"$WORK/ntga-datagen" -dataset lifesci -scale 1 -seed 42 -out "$WORK/bio.nt"

echo "== boot daemon on $ADDR"
"$WORK/ntga-serve" -data "$WORK/bio.nt" -addr "$ADDR" 2>"$WORK/serve.log" &
SERVE_PID=$!

echo "== wait for /healthz"
i=0
until "$WORK/ntga-run" -health "$ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "daemon never became healthy; log:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "daemon died; log:" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    }
    sleep 0.2
done

# The delta touches bio:label, so the label query must be evicted while the
# organism query (no shared property) survives ingestion untouched.
AFFECTED='{"query":"PREFIX bio: <http://bio2rdf.example.org/> SELECT * WHERE { ?g bio:label ?l . }"}'
UNAFFECTED='{"query":"PREFIX bio: <http://bio2rdf.example.org/> SELECT * WHERE { ?g bio:organism ?o . }"}'

echo "== prime the result cache"
curl -sf -X POST "http://$ADDR/query" -d "$AFFECTED" >/dev/null
curl -sf -X POST "http://$ADDR/query" -d "$UNAFFECTED" >/dev/null

echo "== ingest a delta batch"
cat >"$WORK/delta.nt" <<'EOF'
<http://bio2rdf.example.org/smokegene> <http://bio2rdf.example.org/label> "smoke gene" .
<http://bio2rdf.example.org/smokegene> <http://bio2rdf.example.org/type> <http://bio2rdf.example.org/Gene> .
EOF
"$WORK/ntga-ingest" -server "$ADDR" -file "$WORK/delta.nt"

METRICS="$(curl -sf "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '"ingests": *1' || {
    echo "metrics did not record the ingest: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"delta_blocks": *1' || {
    echo "ingest did not leave one delta block: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"cache_retained": *[1-9]' || {
    echo "no cache entry survived the ingest: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"cache_evicted": *[1-9]' || {
    echo "no affected cache entry was evicted: $METRICS" >&2
    exit 1
}

echo "== unaffected query survives as a cache hit"
HIT="$(curl -sf -X POST "http://$ADDR/query" -d "$UNAFFECTED")"
echo "$HIT" | grep -q '"cache": *"hit"' || {
    echo "unaffected query was not served from cache: $HIT" >&2
    exit 1
}
echo "$HIT" | grep -q '"cycles": *0,' || {
    echo "unaffected cache hit reported MR cycles: $HIT" >&2
    exit 1
}

echo "== affected query re-executes and sees the delta"
MISS="$(curl -sf -X POST "http://$ADDR/query" -d "$AFFECTED")"
echo "$MISS" | grep -q '"cache": *"miss"' || {
    echo "affected query was not evicted: $MISS" >&2
    exit 1
}
echo "$MISS" | grep -q 'smoke gene' || {
    echo "affected query does not see the ingested triple: $MISS" >&2
    exit 1
}

echo "== compact the delta chain"
"$WORK/ntga-ingest" -server "$ADDR" -compact
METRICS="$(curl -sf "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '"compactions": *1' || {
    echo "metrics did not record the compaction: $METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '"delta_blocks": *0' || {
    echo "compaction did not drain the delta chain: $METRICS" >&2
    exit 1
}

echo "== compacted base still serves the delta rows"
AFTER="$(curl -sf -X POST "http://$ADDR/query" -d "$AFFECTED")"
echo "$AFTER" | grep -q 'smoke gene' || {
    echo "compacted base lost the ingested triple: $AFTER" >&2
    exit 1
}

echo "ingest-smoke: OK"
