#!/bin/sh
# bench_trace.sh — regenerate BENCH_serve_trace.json, the persisted
# serve-latency trajectory: the -fig trace experiment (closed-loop Zipf
# sweep at 1/16/256 clients over cached and uncached mixes, plus the
# fixed-vs-adaptive open-loop overload segment), stamped with the current
# commit. If a previous BENCH_serve_trace.json exists it becomes the
# baseline: the run FAILS if any sweep cell's p95 regressed more than 20%,
# leaving the fresh numbers on disk for inspection either way.
set -eu

cd "$(dirname "$0")/.."

OUT="BENCH_serve_trace.json"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
BASELINE_ARGS=""
if [ -f "$OUT" ]; then
    cp "$OUT" "$OUT.baseline"
    trap 'rm -f "$OUT.baseline"' EXIT
    BASELINE_ARGS="-trace-baseline $OUT.baseline"
    echo "== baseline: $OUT ($(sed -n 's/.*"commit": "\([^"]*\)".*/\1/p' "$OUT" | head -1))"
fi

echo "== regenerating trace trajectory @ $COMMIT"
# shellcheck disable=SC2086
go run ./cmd/ntga-bench -fig trace -trace-out "$OUT" -commit "$COMMIT" $BASELINE_ARGS

echo "bench-trace: OK ($OUT)"
