#!/bin/sh
# bench_partition.sh — regenerate BENCH_partition.json, the persisted
# flat-vs-bucketed layout comparison: the -fig partition experiment runs
# the repeat-joined workload (Q1a, B0, B1, B5, B7) on Hive and NTGA-Lazy
# over both layouts and records per-cell shuffle bytes, stamped with the
# current commit. If a previous BENCH_partition.json exists it becomes the
# baseline: the run FAILS if any cell lost its zero-shuffle property or
# regressed its partitioned shuffle volume more than 20%, leaving the
# fresh numbers on disk for inspection either way.
set -eu

cd "$(dirname "$0")/.."

OUT="BENCH_partition.json"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
BASELINE_ARGS=""
if [ -f "$OUT" ]; then
    cp "$OUT" "$OUT.baseline"
    trap 'rm -f "$OUT.baseline"' EXIT
    BASELINE_ARGS="-partition-baseline $OUT.baseline"
    echo "== baseline: $OUT ($(sed -n 's/.*"commit": "\([^"]*\)".*/\1/p' "$OUT" | head -1))"
fi

echo "== regenerating partition layout comparison @ $COMMIT"
# shellcheck disable=SC2086
go run ./cmd/ntga-bench -fig partition -partition-out "$OUT" -commit "$COMMIT" $BASELINE_ARGS

echo "bench-partition: OK ($OUT)"
