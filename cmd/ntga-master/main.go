// Command ntga-master runs the distributed-mode coordinator: it loads an
// N-Triples file into the master-resident simulated DFS, then serves the
// cluster RPC endpoint that ntga-worker processes register against and
// that ntga-run -cluster / ntga-serve -cluster submit queries to.
//
// Usage:
//
//	ntga-master -data data.nt -addr 127.0.0.1:7455
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ntga/internal/cluster"
	"ntga/internal/rdf"
)

func main() {
	var (
		dataFile = flag.String("data", "", "N-Triples input file (required)")
		addr     = flag.String("addr", "127.0.0.1:7455", "RPC listen address")
		nodes    = flag.Int("nodes", 8, "simulated DFS node count")
		rep      = flag.Int("replication", 1, "DFS replication factor")
		reducers = flag.Int("reducers", 0, "default reduce partitions per job (0 = engine default)")
		split    = flag.Int("split-records", 0, "default records per map split (0 = engine default)")
		engName  = flag.String("engine", "", "default engine for queries that do not name one")
		partBkts = flag.Int("partition-buckets", 0, "build the hash-of-subject partitioned layout at boot and run queries over it (0 = flat)")
	)
	flag.Parse()

	if *dataFile == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	f, err := os.Open(*dataFile)
	if err != nil {
		fatal(err)
	}
	g, err := rdf.ReadNTriples(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	m, err := cluster.NewMaster(cluster.MasterConfig{
		Nodes:            *nodes,
		Replication:      *rep,
		Reducers:         *reducers,
		SplitRecords:     *split,
		DefaultEngine:    *engName,
		PartitionBuckets: *partBkts,
	}, g)
	if err != nil {
		fatal(err)
	}
	if err := m.Serve(*addr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ntga-master: listening on %s (%d triples, dataset %s)\n",
		m.Addr(), g.Len(), g.Version())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	m.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-master:", err)
	os.Exit(1)
}
