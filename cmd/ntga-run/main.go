// Command ntga-run evaluates a SPARQL query (in the supported unbound-
// property subset) over an N-Triples file using any of the MapReduce query
// engines, printing the result bindings and the workflow's cost metrics.
//
// Usage:
//
//	ntga-run -data data.nt -query query.rq -engine ntga-lazy
//	ntga-run -data data.nt -e 'SELECT * WHERE { ?s ?p ?o . }' -engine hive -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ntga/internal/bench"
	"ntga/internal/cluster"
	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/ingest"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/refengine"
	"ntga/internal/server"
	"ntga/internal/sparql"
	"ntga/internal/stats"
	"ntga/internal/trace"
)

func main() {
	var (
		dataFile  = flag.String("data", "", "N-Triples input file (required)")
		queryFile = flag.String("query", "", "SPARQL query file")
		inline    = flag.String("e", "", "inline SPARQL query text")
		engName   = flag.String("engine", "ntga-lazy", "engine: auto, pig, hive, sj-per-cycle, sel-sj-first, ntga-eager, ntga-lazy, ntga-lazy-full, ntga-lazy-partial, ref (auto lets the cost advisor pick)")
		nodes     = flag.Int("nodes", 8, "simulated cluster size")
		rep       = flag.Int("replication", 1, "DFS replication factor")
		phiM      = flag.Int("phim", 0, "partial β-unnest partition range (0 = default)")
		sortBuf   = flag.Int64("sortbuf", 0, "map sort-buffer budget in bytes; map output beyond it spills to local disk (0 = unbounded)")
		faults    = flag.String("faults", "", "inject seeded mid-phase faults: rate:seed[:nodekills], e.g. 0.01:7 or 0.01:7:2 (node kills escalate from faults); prints a recovery summary")
		speculate = flag.Bool("speculate", false, "launch speculative backup attempts for straggling tasks")
		metrics   = flag.Bool("metrics", false, "print per-job workflow metrics")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON profile of the workflow to this file (open in chrome://tracing or ui.perfetto.dev)")
		timeline  = flag.Bool("timeline", false, "print a per-job plain-text task timeline (implies tracing)")
		advise    = flag.Bool("advise", false, "print the cost advisor's strategy recommendation")
		optimize  = flag.Bool("optimize", false, "reorder inter-star joins by catalog-estimated selectivity before running")
		statsOut  = flag.String("stats-out", "", "build the statistics catalog (map-only MR job) and write it to this file")
		limit     = flag.Int("limit", 0, "print at most N rows (0 = all)")
		serverURL = flag.String("server", "", "client mode: send the query to a running ntga-serve daemon at this address instead of evaluating locally")
		health    = flag.String("health", "", "check a running ntga-serve daemon's /healthz and exit")
		tenant    = flag.String("tenant", "", "client mode: slot-pool scheduling class for this query")
		noCache   = flag.Bool("no-cache", false, "client mode: bypass the server's result cache")
		clusterAd = flag.String("cluster", "", "distributed mode: submit the query to a running ntga-master at this RPC address instead of evaluating locally")
		clStatus  = flag.Bool("cluster-status", false, "distributed mode: print the master's cluster status and exit")
		reducers  = flag.Int("reducers", 0, "reduce partitions per job (0 = engine default)")
		splitRecs = flag.Int("split-records", 0, "records per map split (0 = engine default)")
		partBkts  = flag.Int("partition-buckets", 0, "build the hash-of-subject partitioned layout with this many buckets and run the query over it (0 = flat); in -cluster mode, 0 keeps the master's default")
		partOut   = flag.String("partition-out", "part/T", "DFS directory for the partitioned layout (with -partition-buckets)")
		noPart    = flag.Bool("no-partition", false, "cluster mode: force the flat plan even when the master holds a partitioned layout")
		ingestNT  = flag.String("ingest", "", "comma-separated N-Triples files appended as delta blocks after the base load; the query runs over base ∪ deltas")
		compact   = flag.Bool("compact", false, "fold the delta chain into a fresh base generation (delta-merge MR job) before running the query")
	)
	flag.Parse()

	if *health != "" {
		checkHealth(*health)
		return
	}
	if *clusterAd != "" {
		if *clStatus {
			clusterStatus(*clusterAd)
			return
		}
		runCluster(*clusterAd, *inline, *queryFile, *engName, *phiM, *reducers, *splitRecs, *metrics, *limit, *noPart)
		return
	}
	if *serverURL != "" {
		runRemote(*serverURL, *inline, *queryFile, *engName, *phiM, *tenant, *noCache, *metrics, *timeline, *limit)
		return
	}

	if *dataFile == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	src := *inline
	if src == "" {
		if *queryFile == "" {
			fatal(fmt.Errorf("one of -query or -e is required"))
		}
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}

	f, err := os.Open(*dataFile)
	if err != nil {
		fatal(err)
	}
	g, err := rdf.ReadNTriples(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	pq, err := sparql.Parse(src)
	if err != nil {
		fatal(err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		fatal(err)
	}

	if *advise {
		advice, err := ntgamr.Advise(ntgamr.CollectStats(g), q, 8)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "advisor: strategy=%v phiM=%d\n", advice.Strategy, advice.PhiM)
		for _, r := range advice.Reasons {
			fmt.Fprintln(os.Stderr, "  -", r)
		}
	}

	if *optimize {
		r, err := plan.Optimize(plan.FromGraph(g), q)
		if err != nil {
			fatal(err)
		}
		if r.Changed {
			fmt.Fprintf(os.Stderr, "optimizer: join order %v (est shuffle %d, legacy %d)\n",
				r.Order, r.Est, r.LegacyEst)
		} else {
			fmt.Fprintf(os.Stderr, "optimizer: join order kept %v (est shuffle %d)\n", r.Order, r.Est)
		}
	}

	var rows []query.Row
	var lastCount int64
	if *engName == "ref" {
		if *ingestNT != "" || *compact {
			fatal(fmt.Errorf("-ingest/-compact need a MapReduce engine (the reference engine has no versioned store)"))
		}
		if *statsOut != "" {
			if err := plan.FromGraph(g).WriteFile(*statsOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "stats: wrote %s\n", *statsOut)
		}
		rows = refengine.Evaluate(q, g)
	} else {
		eng, err := resolveEngine(*engName, *phiM, g, q)
		if err != nil {
			fatal(err)
		}
		var tracer *trace.Tracer
		if *traceOut != "" || *timeline {
			tracer = trace.New()
		}
		cfg := mapreduce.EngineConfig{
			DefaultReducers: *reducers,
			SplitRecords:    *splitRecs,
			SortBufferBytes: *sortBuf,
			Tracer:          tracer,
			Speculation:     *speculate,
		}
		if *faults != "" {
			fp, attempts, err := parseFaults(*faults)
			if err != nil {
				fatal(err)
			}
			cfg.Faults = fp
			cfg.TaskMaxAttempts = attempts
		}
		mr := mapreduce.NewEngine(
			hdfs.New(hdfs.Config{Nodes: *nodes, Replication: *rep}),
			cfg,
		)
		if err := engine.LoadGraph(mr.DFS(), "data/triples", g); err != nil {
			fatal(err)
		}
		if *statsOut != "" {
			// Build the catalog the way a warehouse would: a map-only MR job
			// over the DFS-resident relation, persisted both as a DFS file
			// (plan-time loading) and as an OS file (ntga-explain -stats).
			cat, err := plan.BuildCatalog(mr, "data/triples", "data/catalog", g.Dict)
			if err != nil {
				fatal(err)
			}
			if err := cat.WriteFile(*statsOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "stats: wrote %s (also persisted to DFS data/catalog)\n", *statsOut)
		}
		// Loader mode: one shuffle job writes the bucketed layout, then the
		// query runs map-only over it. The layout is built — and stamped — at
		// the base dataset version, BEFORE any -ingest lands, mirroring a
		// warehouse whose layout predates the deltas: an un-compacted chain
		// makes it stale (shuffle fallback below), and -compact rewrites the
		// affected buckets and re-stamps the manifest.
		if *partBkts > 0 {
			if _, err := plan.BuildPartitionLayout(mr, "data/triples", *partOut, *partBkts, g.Version()); err != nil {
				fatal(err)
			}
		}

		base, deltas := "data/triples", []string(nil)
		dataVer := g.Version()
		if *ingestNT != "" || *compact {
			st, err := ingest.Init(mr.DFS(), base, g)
			if err != nil {
				fatal(err)
			}
			for _, path := range strings.Split(*ingestNT, ",") {
				path = strings.TrimSpace(path)
				if path == "" {
					continue
				}
				df, err := os.Open(path)
				if err != nil {
					fatal(err)
				}
				ires, err := st.Ingest(df)
				df.Close()
				if err != nil {
					fatal(fmt.Errorf("ingesting %s: %w", path, err))
				}
				fmt.Fprintf(os.Stderr, "ingest: %s: %d triples as block %s (dataset %s)\n",
					path, len(ires.Triples), ires.Block.File, ires.Version)
			}
			if *compact {
				opts := ingest.CompactOptions{}
				if *partBkts > 0 {
					opts.LayoutDir = *partOut
				}
				cres, err := st.Compact(mr, opts)
				if err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "compact: folded %d blocks (%d triples) into base generation %d; %d layout buckets rewritten\n",
					cres.Folded, cres.FoldedTriples, cres.Gen, cres.BucketsRewritten)
			}
			man := st.Manifest()
			base, deltas, dataVer = man.Base, man.DeltaFiles(), st.Version()
			// Delta batches may mint terms the query names; re-compile against
			// the extended dictionary so those constants resolve.
			if q, err = query.Compile(pq, g.Dict); err != nil {
				fatal(err)
			}
		}

		// Reloading the layout through the manifest exercises the production
		// path — a stale or missing layout degrades to the flat plan with a
		// warning instead of failing.
		var part *plan.Partitioning
		if *partBkts > 0 {
			part, err = plan.LoadPartitioning(mr.DFS(), *partOut, dataVer)
			if err != nil {
				fmt.Fprintf(os.Stderr, "partition: layout %s unusable (%v); falling back to the shuffle path\n", *partOut, err)
				part = nil
			} else {
				fmt.Fprintf(os.Stderr, "partition: built layout %s (%s)\n", *partOut, part)
			}
		}
		res, err := engine.RunWithDeltas(eng, mr, q, base, deltas, part)
		if tracer != nil {
			// Export whatever spans were recorded even on failure — a trace
			// of a failed workflow is exactly when you want the profile.
			if *traceOut != "" {
				if werr := writeTrace(*traceOut, tracer); werr != nil {
					fatal(werr)
				}
				fmt.Fprintf(os.Stderr, "trace: wrote %s\n", *traceOut)
			}
			if *timeline {
				fmt.Fprint(os.Stderr, trace.Timeline(tracer.Roots()))
			}
		}
		if *faults != "" || *speculate {
			// A recovery summary is most interesting when the run needed
			// recovering — print it even for a failed workflow.
			printRecovery(res)
		}
		if err != nil {
			fatal(err)
		}
		rows = res.Rows
		lastCount = res.Count
		if *metrics {
			printMetrics(res)
		}
	}

	if q.IsCount() {
		// rows is nil for distributed engines (they count without
		// expanding); the reference engine materializes rows.
		count := int64(len(rows))
		if *engName != "ref" {
			count = lastCount
		}
		fmt.Printf("?%s\n%d\n", q.Src.CountVar, count)
		return
	}

	projected := q.ProjectAll(rows)
	header := ""
	for i, v := range q.Select {
		if i > 0 {
			header += "\t"
		}
		header += "?" + v
	}
	fmt.Println(header)
	for i, r := range projected {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more rows)\n", len(projected)-i)
			break
		}
		fmt.Println(q.FormatRow(r))
	}
	fmt.Fprintf(os.Stderr, "%d rows\n", len(projected))
}

// resolveEngine maps the -engine flag to an engine. "auto" asks the cost
// advisor: it picks the NTGA strategy (eager vs lazy) and φ_m from the
// dataset statistics — the same recommendation `-advise` prints.
func resolveEngine(name string, phiM int, g *rdf.Graph, q *query.Query) (engine.QueryEngine, error) {
	if name != "auto" {
		return bench.EngineByName(name, phiM)
	}
	advice, err := ntgamr.Advise(ntgamr.CollectStats(g), q, 8)
	if err != nil {
		return nil, err
	}
	if phiM > 0 {
		advice.PhiM = phiM
	}
	eng := advice.Engine()
	fmt.Fprintf(os.Stderr, "auto: selected %s (phiM=%d)\n", eng.Name(), advice.PhiM)
	return eng, nil
}

func printMetrics(res *engine.Result) {
	t := &stats.Table{Title: "-- workflow metrics (" + res.Engine + ") --",
		Header: []string{"job", "time", "map in", "shuffle", "spilled", "merges", "reduce out", "straggler", "key skew", "byte skew"}}
	straggler := func(j mapreduce.JobMetrics) float64 {
		s := j.MapTaskStats.StragglerRatio
		if j.ReduceTaskStats.StragglerRatio > s {
			s = j.ReduceTaskStats.StragglerRatio
		}
		return s
	}
	for _, j := range res.Workflow.Jobs {
		t.AddRow(j.Job, j.Duration.Round(1000).String(), stats.FormatBytes(j.MapInputBytes),
			stats.FormatBytes(j.MapOutputBytes), stats.FormatBytes(j.SpilledBytes),
			j.MergePasses, stats.FormatBytes(j.ReduceOutputBytes),
			stats.FormatRatio(straggler(j)), stats.FormatRatio(j.ReduceKeySkew),
			stats.FormatRatio(j.ReduceByteSkew))
	}
	t.AddRow("TOTAL", res.Workflow.Duration.Round(1000).String(),
		stats.FormatBytes(res.Workflow.TotalMapInputBytes()),
		stats.FormatBytes(res.Workflow.TotalMapOutputBytes()),
		stats.FormatBytes(res.Workflow.TotalSpilledBytes()),
		res.Workflow.TotalMergePasses(),
		stats.FormatBytes(res.Workflow.TotalReduceOutputBytes()),
		stats.FormatRatio(res.Workflow.MaxStragglerRatio()),
		stats.FormatRatio(res.Workflow.MaxReduceKeySkew()),
		stats.FormatRatio(res.Workflow.MaxReduceByteSkew()))
	fmt.Fprintln(os.Stderr, t.Render())
	fmt.Fprintf(os.Stderr, "cycles=%d peakDisk=%s peakSortBuffer=%s outputRecords=%d outputBytes=%s\n",
		res.Workflow.Cycles, stats.FormatBytes(res.PeakDFSUsed),
		stats.FormatBytes(res.Workflow.MaxPeakSortBufferBytes()),
		res.OutputRecords, stats.FormatBytes(res.OutputBytes))
	for name, v := range res.Counters {
		fmt.Fprintf(os.Stderr, "counter %s = %d\n", name, v)
	}
}

// parseFaults turns "rate:seed[:nodekills]" into a mid-phase fault plan and
// the retry budget to pair with it. A non-zero nodekills arms node-failure
// escalation: one in four firing faults takes the attempt's data node down,
// up to the given budget.
func parseFaults(s string) (*mapreduce.FaultPlan, int, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, 0, fmt.Errorf("-faults: want rate:seed[:nodekills], got %q", s)
	}
	rate, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || rate < 0 || rate > 1 {
		return nil, 0, fmt.Errorf("-faults: bad rate %q (want 0..1)", parts[0])
	}
	seed, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("-faults: bad seed %q", parts[1])
	}
	plan := &mapreduce.FaultPlan{Rate: rate, Seed: seed, MidPhase: true}
	if len(parts) == 3 {
		nk, err := strconv.Atoi(parts[2])
		if err != nil || nk < 0 {
			return nil, 0, fmt.Errorf("-faults: bad nodekills %q", parts[2])
		}
		if nk > 0 {
			plan.NodeFailureRate = 0.25
			plan.MaxNodeKills = nk
		}
	}
	return plan, 8, nil
}

// runCluster submits the query to a running ntga-master and prints the
// master-rendered rows exactly as a local run would print its own.
func runCluster(addr, inline, queryFile, engName string, phiM, reducers, splitRecords int, metrics bool, limit int, noPartition bool) {
	src := inline
	if src == "" {
		if queryFile == "" {
			fatal(fmt.Errorf("one of -query or -e is required"))
		}
		b, err := os.ReadFile(queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	c, err := cluster.Dial(nil, addr)
	if err != nil {
		fatal(fmt.Errorf("dialing master %s: %w", addr, err))
	}
	defer c.Close()
	reply, err := c.Run(context.Background(), &cluster.RunArgs{
		Query:        src,
		Engine:       engName,
		PhiM:         phiM,
		Reducers:     reducers,
		SplitRecords: splitRecords,
		NoPartition:  noPartition,
	})
	if err != nil {
		fatal(err)
	}
	if metrics {
		printMetrics(&engine.Result{
			Engine:        reply.Engine,
			Workflow:      reply.Workflow,
			Counters:      reply.Counters,
			OutputRecords: reply.OutputRecords,
			OutputBytes:   reply.OutputBytes,
			PeakDFSUsed:   reply.PeakDFSUsed,
		})
	}
	if reply.IsCount {
		fmt.Printf("%s\n%d\n", reply.Header[0], reply.Count)
		return
	}
	fmt.Println(strings.Join(reply.Header, "\t"))
	for i, r := range reply.RowsText {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more rows)\n", len(reply.RowsText)-i)
			break
		}
		fmt.Println(r)
	}
	fmt.Fprintf(os.Stderr, "%d rows\n", reply.TotalRows)
}

// clusterStatus prints the master's view of the cluster: dataset identity,
// per-worker liveness and slot occupancy, and scheduler totals.
func clusterStatus(addr string) {
	c, err := cluster.Dial(nil, addr)
	if err != nil {
		fatal(fmt.Errorf("dialing master %s: %w", addr, err))
	}
	defer c.Close()
	st, err := c.Status(context.Background())
	if err != nil {
		fatal(err)
	}
	alive := 0
	for _, w := range st.Workers {
		if w.Alive {
			alive++
		}
	}
	fmt.Printf("master %s: %d triples, dataset %s\n", addr, st.Triples, st.DatasetVersion)
	fmt.Printf("workers: %d alive / %d registered, workers_lost=%d, active_queries=%d, tasks_dispatched=%d\n",
		alive, len(st.Workers), st.WorkersLost, st.ActiveQueries, st.TasksDispatched)
	fmt.Printf("transport: rpc_retries=%d redials=%d fetch_transient_retries=%d worker_reregistrations=%d\n",
		st.RPCRetries, st.Redials, st.FetchTransientRetries, st.WorkerReregistrations)
	fmt.Printf("scheduler: affine_leases=%d\n", st.AffineLeases)
	for _, w := range st.Workers {
		state := "alive"
		if !w.Alive {
			state = "dead"
		}
		fmt.Printf("  worker %d %s %s map %d/%d reduce %d/%d done=%d failed=%d\n",
			w.ID, w.Addr, state, w.MapBusy, w.MapSlots, w.ReduceBusy, w.ReduceSlots,
			w.TasksDone, w.TasksFailed)
	}
}

// printRecovery summarizes what the fault-tolerance machinery did during the
// run: attempts retried or killed, nodes lost, map output regenerated,
// speculative backups raced, and the attempt-private bytes reclaimed.
func printRecovery(res *engine.Result) {
	w := res.Workflow
	fmt.Fprintf(os.Stderr,
		"recovery: retries=%d killedAttempts=%d nodeKills=%d mapOutputRecoveries=%d speculative=%d/%d won tempBytesReclaimed=%s\n",
		w.TotalTaskRetries(), w.TotalKilledAttempts(), w.TotalNodeKills(),
		w.TotalMapOutputRecoveries(), w.TotalSpeculativeWins(), w.TotalSpeculativeLaunched(),
		stats.FormatBytes(w.TotalTempBytesReclaimed()))
}

func writeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkHealth probes a running daemon's /healthz and exits non-zero if it
// is unreachable or unhealthy (the serve-smoke harness's readiness gate).
func checkHealth(addr string) {
	h, err := server.NewClient(addr).Health(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ok triples=%d dataset=%s uptime=%dms\n", h.Triples, h.DatasetVersion, h.UptimeMS)
}

// runRemote is client mode: ship the query to an ntga-serve daemon and
// print the response in the same shape as a local run (rows on stdout,
// run facts on stderr), so outputs are directly comparable.
func runRemote(addr, inline, queryFile, engName string, phiM int, tenant string, noCache, metrics, timeline bool, limit int) {
	src := inline
	if src == "" {
		if queryFile == "" {
			fatal(fmt.Errorf("one of -query or -e is required"))
		}
		b, err := os.ReadFile(queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	req := server.Request{
		Query:    src,
		PhiM:     phiM,
		Tenant:   tenant,
		NoCache:  noCache,
		Limit:    limit,
		Metrics:  metrics,
		Timeline: timeline,
	}
	// The local default is baked into the flag; let the server apply its
	// own default unless the user explicitly picked an engine.
	if engName != "ntga-lazy" {
		req.Engine = engName
	}
	resp, err := server.NewClient(addr).Query(context.Background(), req)
	if err != nil {
		fatal(err)
	}
	if resp.IsCount {
		fmt.Printf("%s\n%d\n", strings.Join(resp.Header, "\t"), resp.Count)
	} else {
		fmt.Println(strings.Join(resp.Header, "\t"))
		for _, r := range resp.Rows {
			fmt.Println(r)
		}
		if resp.TotalRows > len(resp.Rows) {
			fmt.Printf("... (%d more rows)\n", resp.TotalRows-len(resp.Rows))
		}
	}
	if resp.Timeline != "" {
		fmt.Fprint(os.Stderr, resp.Timeline)
	}
	if metrics {
		for _, j := range resp.Jobs {
			fmt.Fprintf(os.Stderr, "job %s: %dms mapIn=%s shuffle=%s reduceOut=%s spilled=%s retries=%d\n",
				j.Job, j.DurationMS, stats.FormatBytes(j.MapInputBytes), stats.FormatBytes(j.ShuffleBytes),
				stats.FormatBytes(j.ReduceOutputBytes), stats.FormatBytes(j.SpilledBytes), j.TaskRetries)
		}
	}
	fmt.Fprintf(os.Stderr, "server: engine=%s cache=%s plan_cache=%s cycles=%d rows=%d shuffle=%s duration=%dms\n",
		resp.Engine, resp.Cache, resp.PlanCache, resp.Cycles, resp.TotalRows,
		stats.FormatBytes(resp.ShuffleBytes), resp.DurationMS)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-run:", err)
	os.Exit(1)
}
