// Command ntga-serve is the resident query daemon: it loads an N-Triples
// dataset into the simulated DFS once, builds the statistics catalog, and
// serves concurrent SPARQL queries over HTTP, with a cluster-wide
// weighted-fair slot pool, admission control, and plan/result caches.
//
// Usage:
//
//	ntga-serve -data data.nt -addr 127.0.0.1:7457
//	curl -s localhost:7457/healthz
//	curl -s -X POST localhost:7457/query -d '{"query":"SELECT * WHERE { ?s ?p ?o . }"}'
//
// See also `ntga-run -server <addr>` for a CLI client.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"ntga/internal/cluster"
	"ntga/internal/rdf"
	"ntga/internal/server"
)

func main() {
	var (
		dataFile  = flag.String("data", "", "N-Triples input file (required)")
		addr      = flag.String("addr", "127.0.0.1:7457", "HTTP listen address")
		nodes     = flag.Int("nodes", 8, "simulated cluster size")
		rep       = flag.Int("replication", 1, "DFS replication factor")
		mapSlots  = flag.Int("map-slots", 8, "cluster-wide map task slots shared by all in-flight queries")
		redSlots  = flag.Int("reduce-slots", 8, "cluster-wide reduce task slots shared by all in-flight queries")
		inflight  = flag.Int("max-inflight", 4, "queries executing concurrently; more wait in the admission queue")
		queue     = flag.Int("max-queue", 16, "admission queue depth; beyond it requests are shed with HTTP 429")
		cacheSz   = flag.Int("result-cache", 256, "LRU result cache entries (negative disables)")
		timeout   = flag.Duration("timeout", 60*time.Second, "default per-query deadline")
		engName   = flag.String("engine", "ntga-lazy", "default engine for requests that name none (auto = catalog advisor)")
		reducers  = flag.Int("reducers", 8, "default reduce partition count per job")
		sortBuf   = flag.Int64("sortbuf", 0, "map sort-buffer budget in bytes (0 = unbounded)")
		splitRecs = flag.Int("split-records", 0, "records per map split (0 = default 8192)")
		clusterAd = flag.String("cluster", "", "distributed mode: execute queries on the ntga-master at this RPC address (must serve the same -data file)")
		adaptive  = flag.Duration("adaptive-target", 0, "enable p95-adaptive admission steering the queue-wait p95 to this target (0 = fixed max-inflight+max-queue window)")
		fallback  = flag.Bool("local-fallback", false, "distributed mode: when the master is unreachable, serve queries on the in-process engine (byte-identical rows) instead of answering 503")
		probe     = flag.Duration("probe-every", 0, "distributed mode: probe the master's health on this interval so /healthz reflects a lost master between requests (0 = on-demand scrapes only)")
		compactAt = flag.Int("compact-after", 0, "auto-run delta-merge compaction when an ingest leaves this many uncompacted delta blocks (0 = compact only on POST /compact)")
	)
	flag.Parse()

	if *dataFile == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	f, err := os.Open(*dataFile)
	if err != nil {
		fatal(err)
	}
	g, err := rdf.ReadNTriples(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	cfg := server.Config{
		Nodes:              *nodes,
		Replication:        *rep,
		MapSlots:           *mapSlots,
		ReduceSlots:        *redSlots,
		MaxInflight:        *inflight,
		MaxQueue:           *queue,
		ResultCacheEntries: *cacheSz,
		DefaultTimeout:     *timeout,
		DefaultEngine:      *engName,
		Reducers:           *reducers,
		SortBufferBytes:    *sortBuf,
		SplitRecords:       *splitRecs,
		LocalFallback:      *fallback,
		ProbeEvery:         *probe,
		CompactAfter:       *compactAt,
	}
	if *adaptive > 0 {
		cfg.Admission = &server.AdmissionConfig{TargetQueueWait: *adaptive}
	}
	if *clusterAd != "" {
		cc, err := cluster.Dial(nil, *clusterAd)
		if err != nil {
			fatal(fmt.Errorf("dialing master %s: %w", *clusterAd, err))
		}
		defer cc.Close()
		cfg.Cluster = cc
	}
	srv, err := server.New(cfg, g)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	mode := "local"
	if *clusterAd != "" {
		mode = "distributed via " + *clusterAd
		if *fallback {
			mode += ", local fallback armed"
		}
	}
	fmt.Fprintf(os.Stderr, "ntga-serve: %d triples loaded, listening on http://%s (%s, slots map=%d reduce=%d, inflight=%d queue=%d)\n",
		srv.Snapshot().Triples, ln.Addr(), mode, *mapSlots, *redSlots, *inflight, *queue)
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-serve:", err)
	os.Exit(1)
}
