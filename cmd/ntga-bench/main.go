// Command ntga-bench regenerates the paper's experiments: each figure or
// table of the evaluation section is a named experiment that runs every
// engine over the scaled-down datasets and prints the comparison tables.
//
// Usage:
//
//	ntga-bench -list
//	ntga-bench -fig fig9a
//	ntga-bench -fig all -scale 2
//	ntga-bench -fig fig9a -json
//
// With -json each figure is emitted as a JSON document whose per-engine
// rows pair the planner's estimated cycle count and shuffle volume with the
// measured ones, so the cost model's accuracy can be tracked over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ntga/internal/bench"
)

// runJSON is one engine's measured-vs-estimated row in -json output.
type runJSON struct {
	Engine          string `json:"engine"`
	OK              bool   `json:"ok"`
	Err             string `json:"err,omitempty"`
	DurationMS      int64  `json:"duration_ms"`
	Cycles          int    `json:"cycles"`
	EstCycles       int    `json:"est_cycles"`
	ShuffleBytes    int64  `json:"shuffle_bytes"`
	EstShuffleBytes int64  `json:"est_shuffle_bytes"`
	ReadBytes       int64  `json:"read_bytes"`
	Rows            int64  `json:"rows"`
}

type queryJSON struct {
	Query string    `json:"query"`
	Runs  []runJSON `json:"runs"`
}

// tableJSON mirrors a report's rendered comparison table, so figure output
// that is not per-query (e.g. the serving sweep) survives -json too.
type tableJSON struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

type figureJSON struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Notes   []string    `json:"notes,omitempty"`
	Tables  []tableJSON `json:"tables,omitempty"`
	Queries []queryJSON `json:"queries,omitempty"`
}

func toJSON(rep *bench.Report) figureJSON {
	fj := figureJSON{ID: rep.ID, Title: rep.Title, Notes: rep.Notes}
	for _, t := range rep.Tables {
		fj.Tables = append(fj.Tables, tableJSON{Title: t.Title, Header: t.Header, Rows: t.Rows})
	}
	for _, qr := range rep.Queries {
		qj := queryJSON{Query: qr.Query.ID}
		for _, r := range qr.Runs {
			qj.Runs = append(qj.Runs, runJSON{
				Engine:          r.Engine,
				OK:              r.OK,
				Err:             r.Err,
				DurationMS:      r.Duration.Milliseconds(),
				Cycles:          r.Cycles,
				EstCycles:       r.EstCycles,
				ShuffleBytes:    r.ShuffleBytes,
				EstShuffleBytes: r.EstShuffleBytes,
				ReadBytes:       r.ReadBytes,
				Rows:            r.Rows,
			})
		}
		fj.Queries = append(fj.Queries, qj)
	}
	return fj
}

// handleTraceDoc persists and/or baseline-gates the serve-latency
// trajectory: -trace-baseline fails on a >20% p95 regression in any sweep
// cell, -trace-out writes the fresh document (after the gate, so a failed
// run still leaves the new numbers on disk for inspection).
func handleTraceDoc(doc *bench.TraceDoc, outPath, baselinePath string) error {
	var gateErr error
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		var baseline bench.TraceDoc
		if err := json.Unmarshal(raw, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
		gateErr = bench.CompareTraceBaseline(&baseline, doc, 0.20)
	}
	if outPath != "" {
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ntga-bench: wrote trace trajectory to %s\n", outPath)
	}
	return gateErr
}

// handlePartitionDoc persists and/or baseline-gates the layout comparison:
// -partition-baseline fails when a cell lost its zero-shuffle property or
// regressed its partitioned shuffle volume by >20%, -partition-out writes
// the fresh document (after the gate, like the trace flow).
func handlePartitionDoc(doc *bench.PartitionDoc, outPath, baselinePath string) error {
	var gateErr error
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		var baseline bench.PartitionDoc
		if err := json.Unmarshal(raw, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
		gateErr = bench.ComparePartitionBaseline(&baseline, doc, 0.20)
	}
	if outPath != "" {
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ntga-bench: wrote partition layout comparison to %s\n", outPath)
	}
	return gateErr
}

func main() {
	var (
		fig           = flag.String("fig", "all", "experiment id (see -list) or 'all'")
		scale         = flag.Int("scale", 1, "dataset size multiplier")
		seed          = flag.Int64("seed", 42, "dataset seed")
		list          = flag.Bool("list", false, "list experiment ids and exit")
		asJSON        = flag.Bool("json", false, "emit per-figure JSON with estimated vs actual cycles and shuffle bytes")
		traceOut      = flag.String("trace-out", "", "with -fig trace: write the serve-latency trajectory document to this file")
		traceBaseline = flag.String("trace-baseline", "", "with -fig trace: compare the fresh trajectory against this baseline document and fail on a >20% p95 regression")
		partOut       = flag.String("partition-out", "", "with -fig partition: write the layout comparison document to this file")
		partBaseline  = flag.String("partition-baseline", "", "with -fig partition: compare against this baseline document and fail on lost zero-shuffle cells or a >20% shuffle regression")
		commit        = flag.String("commit", "", "commit id stamped into -trace-out / -partition-out (e.g. $(git rev-parse --short HEAD))")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Figures() {
			fmt.Println(id)
		}
		return
	}

	ids := bench.Figures()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}
	opt := bench.Options{Scale: *scale, Seed: *seed}
	failed := false
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, id := range ids {
		var rep *bench.Report
		var err error
		if id == "trace" && (*traceOut != "" || *traceBaseline != "") {
			// The trajectory variant: run once, persist/compare the document.
			var doc *bench.TraceDoc
			rep, doc, err = bench.TraceResult(opt)
			if err == nil {
				doc.Commit = *commit
				if derr := handleTraceDoc(doc, *traceOut, *traceBaseline); derr != nil {
					fmt.Fprintf(os.Stderr, "ntga-bench: trace: %v\n", derr)
					failed = true
				}
			}
		} else if id == "partition" && (*partOut != "" || *partBaseline != "") {
			var doc *bench.PartitionDoc
			rep, doc, err = bench.PartitionResult(opt)
			if err == nil {
				doc.Commit = *commit
				if derr := handlePartitionDoc(doc, *partOut, *partBaseline); derr != nil {
					fmt.Fprintf(os.Stderr, "ntga-bench: partition: %v\n", derr)
					failed = true
				}
			}
		} else {
			rep, err = bench.RunFigure(id, opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntga-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		if *asJSON {
			if err := enc.Encode(toJSON(rep)); err != nil {
				fmt.Fprintf(os.Stderr, "ntga-bench: %s: %v\n", id, err)
				failed = true
			}
			continue
		}
		fmt.Println(rep.Render())
	}
	if failed {
		os.Exit(1)
	}
}
