// Command ntga-bench regenerates the paper's experiments: each figure or
// table of the evaluation section is a named experiment that runs every
// engine over the scaled-down datasets and prints the comparison tables.
//
// Usage:
//
//	ntga-bench -list
//	ntga-bench -fig fig9a
//	ntga-bench -fig all -scale 2
//	ntga-bench -fig fig9a -json
//
// With -json each figure is emitted as a JSON document whose per-engine
// rows pair the planner's estimated cycle count and shuffle volume with the
// measured ones, so the cost model's accuracy can be tracked over time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ntga/internal/bench"
)

// runJSON is one engine's measured-vs-estimated row in -json output.
type runJSON struct {
	Engine          string `json:"engine"`
	OK              bool   `json:"ok"`
	Err             string `json:"err,omitempty"`
	DurationMS      int64  `json:"duration_ms"`
	Cycles          int    `json:"cycles"`
	EstCycles       int    `json:"est_cycles"`
	ShuffleBytes    int64  `json:"shuffle_bytes"`
	EstShuffleBytes int64  `json:"est_shuffle_bytes"`
	ReadBytes       int64  `json:"read_bytes"`
	Rows            int64  `json:"rows"`
}

type queryJSON struct {
	Query string    `json:"query"`
	Runs  []runJSON `json:"runs"`
}

// tableJSON mirrors a report's rendered comparison table, so figure output
// that is not per-query (e.g. the serving sweep) survives -json too.
type tableJSON struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

type figureJSON struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Notes   []string    `json:"notes,omitempty"`
	Tables  []tableJSON `json:"tables,omitempty"`
	Queries []queryJSON `json:"queries,omitempty"`
}

func toJSON(rep *bench.Report) figureJSON {
	fj := figureJSON{ID: rep.ID, Title: rep.Title, Notes: rep.Notes}
	for _, t := range rep.Tables {
		fj.Tables = append(fj.Tables, tableJSON{Title: t.Title, Header: t.Header, Rows: t.Rows})
	}
	for _, qr := range rep.Queries {
		qj := queryJSON{Query: qr.Query.ID}
		for _, r := range qr.Runs {
			qj.Runs = append(qj.Runs, runJSON{
				Engine:          r.Engine,
				OK:              r.OK,
				Err:             r.Err,
				DurationMS:      r.Duration.Milliseconds(),
				Cycles:          r.Cycles,
				EstCycles:       r.EstCycles,
				ShuffleBytes:    r.ShuffleBytes,
				EstShuffleBytes: r.EstShuffleBytes,
				ReadBytes:       r.ReadBytes,
				Rows:            r.Rows,
			})
		}
		fj.Queries = append(fj.Queries, qj)
	}
	return fj
}

func main() {
	var (
		fig    = flag.String("fig", "all", "experiment id (see -list) or 'all'")
		scale  = flag.Int("scale", 1, "dataset size multiplier")
		seed   = flag.Int64("seed", 42, "dataset seed")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		asJSON = flag.Bool("json", false, "emit per-figure JSON with estimated vs actual cycles and shuffle bytes")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Figures() {
			fmt.Println(id)
		}
		return
	}

	ids := bench.Figures()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}
	opt := bench.Options{Scale: *scale, Seed: *seed}
	failed := false
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, id := range ids {
		rep, err := bench.RunFigure(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntga-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		if *asJSON {
			if err := enc.Encode(toJSON(rep)); err != nil {
				fmt.Fprintf(os.Stderr, "ntga-bench: %s: %v\n", id, err)
				failed = true
			}
			continue
		}
		fmt.Println(rep.Render())
	}
	if failed {
		os.Exit(1)
	}
}
