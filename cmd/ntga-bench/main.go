// Command ntga-bench regenerates the paper's experiments: each figure or
// table of the evaluation section is a named experiment that runs every
// engine over the scaled-down datasets and prints the comparison tables.
//
// Usage:
//
//	ntga-bench -list
//	ntga-bench -fig fig9a
//	ntga-bench -fig all -scale 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ntga/internal/bench"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "experiment id (see -list) or 'all'")
		scale = flag.Int("scale", 1, "dataset size multiplier")
		seed  = flag.Int64("seed", 42, "dataset seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Figures() {
			fmt.Println(id)
		}
		return
	}

	ids := bench.Figures()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}
	opt := bench.Options{Scale: *scale, Seed: *seed}
	failed := false
	for _, id := range ids {
		rep, err := bench.RunFigure(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntga-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(rep.Render())
	}
	if failed {
		os.Exit(1)
	}
}
