// Command ntga-ingest appends N-Triples batches to a running ntga-serve
// daemon's versioned dataset (POST /ingest) and triggers delta-merge
// compaction (POST /compact) — the write-path CLI next to ntga-run's
// read-path client mode.
//
// Usage:
//
//	ntga-ingest -server 127.0.0.1:7457 -file delta.nt
//	cat delta.nt | ntga-ingest -server 127.0.0.1:7457
//	ntga-ingest -server 127.0.0.1:7457 -compact
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ntga/internal/server"
)

func main() {
	var (
		addr    = flag.String("server", "", "ntga-serve address (required)")
		file    = flag.String("file", "", "N-Triples batch file (default: read the batch from stdin)")
		compact = flag.Bool("compact", false, "fold the server's delta chain into a fresh base generation; with -file/stdin the batch is ingested first")
		timeout = flag.Duration("timeout", 2*time.Minute, "request deadline")
	)
	flag.Parse()

	if *addr == "" {
		fatal(fmt.Errorf("-server is required"))
	}
	c := server.NewClient(*addr)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Compact-only invocations skip the batch entirely; otherwise the batch
	// comes from -file or stdin.
	var batch io.ReadCloser
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		batch = f
	case !*compact:
		batch = os.Stdin
	}

	if batch != nil {
		res, err := c.Ingest(ctx, batch)
		batch.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ingested %d triples (seq %d, %d delta blocks, dataset %s)\n",
			res.Triples, res.Seq, res.DeltaBlocks, res.DatasetVersion)
		fmt.Printf("cache: %d retained, %d evicted\n", res.CacheRetained, res.CacheEvicted)
		if res.Compacted {
			fmt.Printf("auto-compacted (%d layout buckets rewritten)\n", res.BucketsRewritten)
		}
	}

	if *compact {
		res, err := c.Compact(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("compacted %d delta blocks (%d triples) into base generation %d (dataset %s)\n",
			res.Folded, res.FoldedTriples, res.Gen, res.Version)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-ingest:", err)
	os.Exit(1)
}
