// Command ntga-worker runs one distributed-mode worker: it registers with
// an ntga-master, rebuilds query plans from the specs the master leases to
// it, executes map/reduce task attempts, and serves its committed map
// output to peer workers over the same RPC transport.
//
// Usage:
//
//	ntga-worker -master 127.0.0.1:7455
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ntga/internal/cluster"
)

func main() {
	var (
		master    = flag.String("master", "", "master RPC address (required)")
		addr      = flag.String("addr", "127.0.0.1:0", "this worker's shuffle-serving listen address")
		mapSlots  = flag.Int("map-slots", 2, "concurrent map tasks")
		redSlots  = flag.Int("reduce-slots", 2, "concurrent reduce tasks")
		taskDelay = flag.Duration("task-delay", 0, "artificial per-task delay (smoke tests: stretch jobs so failures land mid-run)")

		// Seeded network chaos on this worker's outbound edges (master RPC
		// and peer shuffle fetches) — the wire-level counterpart of the
		// engine's -failure-rate task chaos.
		chaosSeed   = flag.Int64("chaos-seed", 0, "seed for the network fault plan draws")
		chaosDrop   = flag.Float64("chaos-drop", 0, "probability an outbound dial is refused")
		chaosSever  = flag.Float64("chaos-sever", 0, "probability an outbound message severs its connection")
		chaosSevers = flag.Int("chaos-max-severs", 0, "cap on sever injections (0 = unlimited)")
		chaosDelayP = flag.Float64("chaos-delay-rate", 0, "probability an outbound message is delayed by -chaos-delay")
		chaosDelay  = flag.Duration("chaos-delay", 0, "injected per-message delay")

		// A scripted partition window: cut this worker off from the master
		// mid-run, then heal — the partition_smoke.sh scenario.
		partAfter = flag.Duration("partition-master-after", 0, "partition this worker from the master after this long (0 = never)")
		partFor   = flag.Duration("partition-master-for", 2*time.Second, "how long the scripted partition lasts before healing")
	)
	flag.Parse()

	if *master == "" {
		fatal(fmt.Errorf("-master is required"))
	}
	var tr cluster.Transport
	var chaos *cluster.ChaosNetwork
	const chaosLabel = "worker"
	if *chaosDrop > 0 || *chaosSever > 0 || (*chaosDelayP > 0 && *chaosDelay > 0) || *partAfter > 0 {
		chaos = cluster.NewChaosNetwork(cluster.NetFaultPlan{
			Seed:      *chaosSeed,
			DropRate:  *chaosDrop,
			SeverRate: *chaosSever,
			MaxSevers: *chaosSevers,
			DelayRate: *chaosDelayP,
			Delay:     *chaosDelay,
		})
		tr = chaos.Transport(chaosLabel, nil)
	}
	w := cluster.NewWorker(cluster.WorkerConfig{
		Addr:        *addr,
		MapSlots:    *mapSlots,
		ReduceSlots: *redSlots,
		TaskDelay:   *taskDelay,
	}, tr, *master)
	if err := w.Start(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ntga-worker: registered as worker %d at %s (master %s, %d map + %d reduce slots)\n",
		w.ID(), w.Addr(), *master, *mapSlots, *redSlots)

	if chaos != nil && *partAfter > 0 {
		// The master never registered a chaos listener, so its edge label is
		// its dial address.
		go func() {
			time.Sleep(*partAfter)
			fmt.Fprintf(os.Stderr, "ntga-worker: chaos: partitioning from master for %s\n", *partFor)
			chaos.PartitionBoth(chaosLabel, *master)
			time.Sleep(*partFor)
			chaos.HealBoth(chaosLabel, *master)
			fmt.Fprintf(os.Stderr, "ntga-worker: chaos: partition healed\n")
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	w.Close()
	// Give in-flight RPC teardown a beat before exiting.
	time.Sleep(50 * time.Millisecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-worker:", err)
	os.Exit(1)
}
