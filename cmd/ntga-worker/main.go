// Command ntga-worker runs one distributed-mode worker: it registers with
// an ntga-master, rebuilds query plans from the specs the master leases to
// it, executes map/reduce task attempts, and serves its committed map
// output to peer workers over the same RPC transport.
//
// Usage:
//
//	ntga-worker -master 127.0.0.1:7455
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ntga/internal/cluster"
)

func main() {
	var (
		master    = flag.String("master", "", "master RPC address (required)")
		addr      = flag.String("addr", "127.0.0.1:0", "this worker's shuffle-serving listen address")
		mapSlots  = flag.Int("map-slots", 2, "concurrent map tasks")
		redSlots  = flag.Int("reduce-slots", 2, "concurrent reduce tasks")
		taskDelay = flag.Duration("task-delay", 0, "artificial per-task delay (smoke tests: stretch jobs so failures land mid-run)")
	)
	flag.Parse()

	if *master == "" {
		fatal(fmt.Errorf("-master is required"))
	}
	w := cluster.NewWorker(cluster.WorkerConfig{
		Addr:        *addr,
		MapSlots:    *mapSlots,
		ReduceSlots: *redSlots,
		TaskDelay:   *taskDelay,
	}, nil, *master)
	if err := w.Start(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ntga-worker: registered as worker %d at %s (master %s, %d map + %d reduce slots)\n",
		w.ID(), w.Addr(), *master, *mapSlots, *redSlots)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	w.Close()
	// Give in-flight RPC teardown a beat before exiting.
	time.Sleep(50 * time.Millisecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-worker:", err)
	os.Exit(1)
}
