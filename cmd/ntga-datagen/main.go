// Command ntga-datagen writes one of the synthetic benchmark datasets
// (BSBM-like, Bio2RDF-like LifeSci, DBpedia-like Infobox) as N-Triples.
//
// Usage:
//
//	ntga-datagen -dataset bsbm -scale 2 -seed 7 -out data.nt
package main

import (
	"flag"
	"fmt"
	"os"

	"ntga/internal/bench"
	"ntga/internal/rdf"
)

func main() {
	var (
		dataset = flag.String("dataset", "bsbm", "dataset generator: bsbm, lifesci, infobox")
		scale   = flag.Int("scale", 1, "size multiplier (1 ≈ a few thousand triples)")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	g, err := bench.Dataset(*dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rdf.WriteNTriples(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples (%d distinct terms)\n", g.Len(), g.Dict.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-datagen:", err)
	os.Exit(1)
}
