// Command ntga-explain compiles a query against a dataset and prints its
// logical structure (star decomposition, unbound slots, join plan) plus the
// physical MapReduce plan each engine would execute — the cycle counts and
// triple-relation scans that drive the paper's cost comparisons.
//
// Usage:
//
//	ntga-explain -data data.nt -e 'SELECT * WHERE { ?s ?p ?o . ?s <http://x/label> ?l . }'
package main

import (
	"flag"
	"fmt"
	"os"

	"ntga/internal/engine"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
)

func main() {
	var (
		dataFile  = flag.String("data", "", "N-Triples input file (required: the dictionary resolves constants)")
		queryFile = flag.String("query", "", "SPARQL query file")
		inline    = flag.String("e", "", "inline SPARQL query text")
	)
	flag.Parse()

	if *dataFile == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	src := *inline
	if src == "" {
		if *queryFile == "" {
			fatal(fmt.Errorf("one of -query or -e is required"))
		}
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	f, err := os.Open(*dataFile)
	if err != nil {
		fatal(err)
	}
	g, err := rdf.ReadNTriples(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	pq, err := sparql.Parse(src)
	if err != nil {
		fatal(err)
	}
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		fatal(err)
	}

	fmt.Println("== logical plan ==")
	fmt.Print(q.Explain())
	if q.Empty() {
		fmt.Println("(provably empty against this dataset)")
	}

	const input = "T"
	plans := []struct {
		name string
		plan func() ([]mapreduce.Stage, error)
	}{
		{"Pig", func() ([]mapreduce.Stage, error) {
			var cl engine.Cleaner
			s, _, err := relmr.NewPig().Plan(q, input, &cl)
			return s, err
		}},
		{"Hive", func() ([]mapreduce.Stage, error) {
			var cl engine.Cleaner
			s, _, err := relmr.NewHive().Plan(q, input, &cl)
			return s, err
		}},
		{"Sel-SJ-first", func() ([]mapreduce.Stage, error) {
			var cl engine.Cleaner
			s, _, err := relmr.NewSelSJFirst().Plan(q, input, &cl)
			return s, err
		}},
		{"NTGA-Eager", func() ([]mapreduce.Stage, error) {
			var cl engine.Cleaner
			s, _, err := ntgamr.NewEager().Plan(q, input, &cl, mapreduce.NewCounters())
			return s, err
		}},
		{"NTGA-Lazy", func() ([]mapreduce.Stage, error) {
			var cl engine.Cleaner
			s, _, err := ntgamr.NewLazy().Plan(q, input, &cl, mapreduce.NewCounters())
			return s, err
		}},
	}
	for _, p := range plans {
		fmt.Printf("\n== %s physical plan ==\n", p.name)
		stages, err := p.plan()
		if err != nil {
			fmt.Printf("  (unsupported: %v)\n", err)
			continue
		}
		cycles := 0
		for si, st := range stages {
			for _, job := range st {
				cycles++
				fmt.Printf("  stage %d: %-24s inputs=%v\n", si+1, job.Name, job.Inputs)
			}
		}
		fmt.Printf("  MR cycles: %d, full scans of triple relation: %d\n",
			cycles, mapreduce.CountScansOf(stages, input))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-explain:", err)
	os.Exit(1)
}
