// Command ntga-explain compiles a query and prints its logical structure
// (star decomposition, unbound slots, join plan) plus the physical plan and
// catalog-estimated cost for each engine — the cycle counts, triple-relation
// scans, and shuffle-byte estimates that drive the paper's cost comparisons.
//
// Statistics come from either the dataset itself (-data, exact catalog) or a
// persisted statistics catalog (-stats, no graph load at all — the warehouse
// deployment mode where plans are priced against the catalog file produced
// by `ntga-run -stats-out`).
//
// With -analyze (needs -data) each supported engine also executes the query
// on an in-memory cluster and the output pairs every estimate with the
// measured cycles, scans, and shuffle bytes.
//
// Usage:
//
//	ntga-explain -data data.nt -e 'SELECT * WHERE { ?s ?p ?o . ?s <http://x/label> ?l . }'
//	ntga-explain -stats catalog.json -json -query q.rq
//	ntga-explain -data data.nt -analyze -query q.rq
package main

import (
	"flag"
	"fmt"
	"os"

	"ntga/internal/explain"
	"ntga/internal/plan"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

func main() {
	var (
		dataFile  = flag.String("data", "", "N-Triples input file (builds an exact catalog)")
		statsFile = flag.String("stats", "", "statistics catalog file (plan without loading any data)")
		queryFile = flag.String("query", "", "SPARQL query file")
		inline    = flag.String("e", "", "inline SPARQL query text")
		jsonOut   = flag.Bool("json", false, "emit the plan and cost estimates as JSON")
		optimize  = flag.Bool("optimize", false, "reorder inter-star joins by estimated selectivity before planning")
		analyze   = flag.Bool("analyze", false, "also execute the query per engine and report estimated vs actual costs (needs -data)")
		partBkts  = flag.Int("partition-buckets", 0, "plan (and with -analyze, run) over a hash-of-subject layout with this many buckets (0 = flat)")
	)
	flag.Parse()

	if *dataFile == "" && *statsFile == "" {
		fatal(fmt.Errorf("one of -data or -stats is required"))
	}
	if *analyze && *dataFile == "" {
		fatal(fmt.Errorf("-analyze executes the query and therefore needs -data"))
	}
	src := *inline
	if src == "" {
		if *queryFile == "" {
			fatal(fmt.Errorf("one of -query or -e is required"))
		}
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}

	// Resolve the catalog and the dictionary the query compiles against.
	// With -stats there is no dataset: the query compiles against an empty
	// dictionary (constants become unsatisfiable predicates, which changes
	// nothing about plan shape or estimates — the cost model reads the
	// source AST, not compiled IDs).
	var cat *plan.Catalog
	var g *rdf.Graph
	dict := rdf.NewDict()
	if *dataFile != "" {
		f, err := os.Open(*dataFile)
		if err != nil {
			fatal(err)
		}
		g, err = rdf.ReadNTriples(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		dict = g.Dict
		cat = plan.FromGraph(g)
	} else {
		var err error
		cat, err = plan.ReadFile(*statsFile)
		if err != nil {
			fatal(err)
		}
	}

	pq, err := sparql.Parse(src)
	if err != nil {
		fatal(err)
	}
	q, err := query.Compile(pq, dict)
	if err != nil {
		fatal(err)
	}

	var reorder *plan.Reorder
	if *optimize {
		reorder, err = plan.Optimize(cat, q)
		if err != nil {
			fatal(err)
		}
	}

	// The partitioned view: plans are priced as if the input were the
	// hash-of-subject bucketed layout. With -stats there is no dataset
	// version; the layout identity still determines the plan shape.
	var part *plan.Partitioning
	if *partBkts > 0 {
		version := ""
		if g != nil {
			version = g.Version()
		}
		part, err = plan.NewPartitioning(plan.PartitionKeySubject, *partBkts, "part/T", version)
		if err != nil {
			fatal(err)
		}
	}

	if *analyze {
		runs, err := explain.AnalyzePartitioned(cat, g, q, *partBkts, explain.Engines())
		if err != nil {
			fatal(err)
		}
		var s string
		if *jsonOut {
			s, err = explain.RenderAnalyzeJSON(runs)
		} else {
			s = explain.RenderAnalyze(runs)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(s)
		return
	}

	costs := explain.ForQueryPartitioned(cat, q, part, explain.Engines())
	if *jsonOut {
		s, err := explain.RenderJSON(costs)
		if err != nil {
			fatal(err)
		}
		fmt.Print(s)
		return
	}

	fmt.Println("== logical plan ==")
	fmt.Print(q.Explain())
	if *dataFile != "" && q.Empty() {
		fmt.Println("(provably empty against this dataset)")
	}
	if reorder != nil {
		if reorder.Changed {
			fmt.Printf("join order optimized: %v (est shuffle %d, legacy %d)\n",
				reorder.Order, reorder.Est, reorder.LegacyEst)
		} else {
			fmt.Printf("join order kept: %v (est shuffle %d)\n", reorder.Order, reorder.Est)
		}
	}
	fmt.Println()
	fmt.Print(explain.Render(costs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ntga-explain:", err)
	os.Exit(1)
}
