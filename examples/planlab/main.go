// Planlab: plan inspection across the engine families. For a selection of
// catalog queries it prints the star decomposition and the MapReduce plan
// every engine would run — the cycle counts and triple-relation scans
// behind the Figure 3 case study — without executing anything.
//
// Run with:
//
//	go run ./examples/planlab
package main

import (
	"fmt"
	"log"

	"ntga/internal/bench"
	"ntga/internal/engine"
	"ntga/internal/ntgamr"
	"ntga/internal/query"
	"ntga/internal/relmr"
	"ntga/internal/sparql"
	"ntga/internal/stats"
)

func main() {
	g, err := bench.Dataset("bsbm", 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	const input = "T"

	table := &stats.Table{
		Title:  "MR cycles / full scans per engine (plan-level, no execution)",
		Header: []string{"query", "Pig", "Hive", "Sel-SJ-first", "NTGA-Lazy"},
	}
	for _, id := range []string{"Q1a", "Q2a", "Q3a", "B0", "B1", "B3", "B5"} {
		cq, err := bench.Lookup(id)
		if err != nil {
			log.Fatal(err)
		}
		pq, err := sparql.Parse(cq.Src)
		if err != nil {
			log.Fatal(err)
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			log.Fatal(err)
		}
		row := []any{id}
		for _, e := range []engine.QueryEngine{
			relmr.NewPig(), relmr.NewHive(), relmr.NewSelSJFirst(), ntgamr.NewLazy(),
		} {
			row = append(row, planShape(e, q, input))
		}
		table.AddRow(row...)
	}
	fmt.Println(table.Render())
	fmt.Println(`cells are "cycles/scans"; n/a = shape unsupported by that planner`)

	// Show one full logical plan with an unbound-property join.
	cq, _ := bench.Lookup("B1")
	pq, _ := sparql.Parse(cq.Src)
	q, err := query.Compile(pq, g.Dict)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlogical plan for B1:\n%s", q.Explain())
}

func planShape(e engine.QueryEngine, q *query.Query, input string) string {
	var cl engine.Cleaner
	p, err := e.Plan(q, input, &cl, nil)
	if err != nil {
		return "n/a"
	}
	return fmt.Sprintf("%d/%d", p.Cycles(), p.ScanCount())
}
