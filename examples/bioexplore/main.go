// Bioexplore: the paper's motivating scenario — exploring a life-sciences
// warehouse whose relationships you only partially know. It generates the
// Bio2RDF-like dataset, then runs the A-series exploration queries under
// every engine, showing how eager vs lazy β-unnesting changes the number
// and size of the materialized triplegroups.
//
// Run with:
//
//	go run ./examples/bioexplore
package main

import (
	"fmt"
	"log"

	"ntga/internal/bench"
	"ntga/internal/ntgamr"
	"ntga/internal/stats"
)

func main() {
	g, err := bench.Dataset("lifesci", 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LifeSci warehouse: %d triples, %d terms\n\n", g.Len(), g.Dict.Len())

	queries := []string{"A1", "A3", "A4", "A5", "A6"}
	table := &stats.Table{
		Title:  "Exploration queries: relational tuples vs triplegroups",
		Header: []string{"query", "engine", "rows", "out records", "out bytes", "HDFS writes", "cycles"},
	}
	for _, id := range queries {
		cq, err := bench.Lookup(id)
		if err != nil {
			log.Fatal(err)
		}
		qr, err := bench.RunQuery(bench.ClusterSpec{Nodes: 8}, g, cq, bench.AllEnginesScaled(2))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range qr.Runs {
			if !r.OK {
				table.AddRow(id, r.Engine, "X", "-", "-", "-", r.Cycles)
				continue
			}
			table.AddRow(id, r.Engine, r.Rows, stats.FormatCount(r.OutputRecords),
				stats.FormatBytes(r.OutputBytes), stats.FormatBytes(r.WriteBytes), r.Cycles)
		}
	}
	fmt.Println(table.Render())

	// Zoom into A1: the same result set, three representations.
	cq, _ := bench.Lookup("A1")
	qr, err := bench.RunQuery(bench.ClusterSpec{Nodes: 8}, g, cq, bench.AllEnginesScaled(2))
	if err != nil {
		log.Fatal(err)
	}
	hive, _ := qr.Run("Hive")
	eager, _ := qr.Run("NTGA-Eager")
	lazy, _ := qr.Run("NTGA-Lazy")
	fmt.Printf("A1 (%s):\n", cq.Description)
	fmt.Printf("  relational n-tuples:      %6d records, %8s\n", hive.OutputRecords, stats.FormatBytes(hive.OutputBytes))
	fmt.Printf("  eager-unnested TGs:       %6d records, %8s (counter %s=%d)\n",
		eager.OutputRecords, stats.FormatBytes(eager.OutputBytes),
		ntgamr.CounterEagerUnnest, eager.Counters[ntgamr.CounterEagerUnnest])
	fmt.Printf("  lazy nested AnnTGs:       %6d records, %8s\n", lazy.OutputRecords, stats.FormatBytes(lazy.OutputBytes))
	fmt.Printf("  redundancy factor of the relational form: %.2f\n",
		stats.RedundancyFactor(lazy.OutputBytes, hive.OutputBytes))
}
