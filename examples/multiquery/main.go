// Multiquery: scan sharing across a workload of exploration queries. A
// data analyst poking at an unfamiliar warehouse rarely asks one question;
// this example submits the whole A-series as one batch, sharing a single
// grouping cycle (and a single scan of the triple relation) across all six
// queries — and contrasts the batch's cost profile with running them one
// at a time.
//
// Run with:
//
//	go run ./examples/multiquery
package main

import (
	"fmt"
	"log"

	"ntga/internal/bench"
	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/query"
	"ntga/internal/sparql"
	"ntga/internal/stats"
)

func main() {
	g, err := bench.Dataset("lifesci", 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	mr := mapreduce.NewEngine(hdfs.New(hdfs.Config{Nodes: 8}), mapreduce.EngineConfig{})
	const input = "warehouse/triples"
	if err := engine.LoadGraph(mr.DFS(), input, g); err != nil {
		log.Fatal(err)
	}

	ids := []string{"A1", "A2", "A3", "A4", "A5", "A6"}
	var qs []*query.Query
	for _, id := range ids {
		cq, err := bench.Lookup(id)
		if err != nil {
			log.Fatal(err)
		}
		pq, err := sparql.Parse(cq.Src)
		if err != nil {
			log.Fatal(err)
		}
		q, err := query.Compile(pq, g.Dict)
		if err != nil {
			log.Fatal(err)
		}
		qs = append(qs, q)
	}

	lazy := ntgamr.NewLazy()

	// One at a time.
	var sepCycles int
	var sepReads, sepShuffle int64
	for qi, q := range qs {
		res, err := lazy.Run(mr, q, input)
		if err != nil {
			log.Fatalf("%s: %v", ids[qi], err)
		}
		sepCycles += res.Workflow.Cycles
		sepReads += res.Workflow.TotalMapInputBytes()
		sepShuffle += res.Workflow.TotalMapOutputBytes()
	}

	// As one shared-scan batch.
	batch, err := lazy.RunBatch(mr, qs, input)
	if err != nil {
		log.Fatal(err)
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Six exploration queries over %d triples (NTGA-Lazy)", g.Len()),
		Header: []string{"mode", "MR cycles", "HDFS reads", "shuffle"},
	}
	t.AddRow("one at a time", sepCycles, stats.FormatBytes(sepReads), stats.FormatBytes(sepShuffle))
	t.AddRow("shared-scan batch", batch.Workflow.Cycles,
		stats.FormatBytes(batch.Workflow.TotalMapInputBytes()),
		stats.FormatBytes(batch.Workflow.TotalMapOutputBytes()))
	fmt.Println(t.Render())

	for qi, r := range batch.Results {
		fmt.Printf("%s: %d rows (%s nested output records)\n",
			ids[qi], len(r.Rows), stats.FormatCount(r.OutputRecords))
	}
}
