// Quickstart: build a small RDF graph, ask an unbound-property question
// ("how is gene9 related to GO terms, via *any* property?"), and evaluate
// it with the NTGA lazy-unnest engine on the simulated MapReduce cluster.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ntga/internal/engine"
	"ntga/internal/hdfs"
	"ntga/internal/mapreduce"
	"ntga/internal/ntgamr"
	"ntga/internal/query"
	"ntga/internal/rdf"
	"ntga/internal/sparql"
)

func main() {
	// 1. Build a graph. gene9 has two bound facts the query names
	//    explicitly (label, xGO) plus cross-references the query discovers
	//    through the unbound-property pattern.
	g := rdf.NewGraph()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	g.Add(ex("gene9"), ex("label"), rdf.NewLiteral("retinoid X receptor"))
	g.Add(ex("gene9"), ex("xGO"), ex("go1"))
	g.Add(ex("gene9"), ex("xGO"), ex("go9"))
	g.Add(ex("gene9"), ex("synonym"), rdf.NewLiteral("RCoR-1"))
	g.Add(ex("gene9"), ex("xRef"), ex("hs2131"))
	g.Add(ex("go1"), ex("label"), rdf.NewLiteral("transcription regulation"))
	g.Add(ex("go9"), ex("label"), rdf.NewLiteral("lipid metabolism"))
	g.Add(ex("hs2131"), ex("label"), rdf.NewLiteral("homo sapiens ref 2131"))

	// 2. An unbound-property query: ?p is a variable in the predicate
	//    position ("gene9 relates to ?x in some way; ?x has a label").
	q, err := sparql.Parse(`
PREFIX ex: <http://example.org/>
SELECT ?p ?x ?xl WHERE {
  ?g ex:label ?l .
  ?g ?p ?x .
  ?x ex:label ?xl .
}`)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := query.Compile(q, g.Dict)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(compiled.Explain())

	// 3. Run it on a simulated 4-node cluster with the paper's LazyUnnest
	//    strategy: one grouping cycle computes both stars, the join cycle
	//    β-unnests the unbound pattern as late as possible.
	mr := mapreduce.NewEngine(hdfs.New(hdfs.Config{Nodes: 4}), mapreduce.EngineConfig{})
	if err := engine.LoadGraph(mr.DFS(), "triples", g); err != nil {
		log.Fatal(err)
	}
	res, err := ntgamr.NewLazy().Run(mr, compiled, "triples")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("?p\t?x\t?xl\n")
	for _, row := range compiled.ProjectAll(res.Rows) {
		fmt.Println(compiled.FormatRow(row))
	}
	fmt.Printf("\n%d rows in %d MR cycles; shuffle %dB, HDFS writes %dB\n",
		len(res.Rows), res.Workflow.Cycles,
		res.Workflow.TotalMapOutputBytes(), res.Workflow.TotalReduceOutputBytes())
}
