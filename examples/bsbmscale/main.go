// Bsbmscale: the scalability story — the same B-series query on growing
// BSBM datasets, and the disk-capacity cliff. On an unbounded cluster every
// engine completes and the footprint gap is visible; on a capacity-limited
// cluster (sized like the paper's 20GB-per-node testbed, scaled) the
// relational engines and the eager strategy fall over while LazyUnnest
// completes.
//
// Run with:
//
//	go run ./examples/bsbmscale
package main

import (
	"fmt"
	"log"

	"ntga/internal/bench"
	"ntga/internal/stats"
)

func main() {
	cq, err := bench.Lookup("B3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query B3: %s\n%s\n\n", cq.Description, cq.Src)

	// Part 1: footprint vs dataset size, unbounded disks.
	table := &stats.Table{
		Title:  "B3 on growing BSBM datasets (unbounded disks)",
		Header: []string{"scale", "triples", "engine", "time", "shuffle", "HDFS writes", "peak disk"},
	}
	for _, scale := range []int{1, 2, 4} {
		g, err := bench.Dataset("bsbm", scale, 42)
		if err != nil {
			log.Fatal(err)
		}
		qr, err := bench.RunQuery(bench.ClusterSpec{Nodes: 8}, g, cq, bench.AllEnginesScaled(scale))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range qr.Runs {
			table.AddRow(scale, g.Len(), r.Engine, r.Duration.Round(100000).String(),
				stats.FormatBytes(r.ShuffleBytes), stats.FormatBytes(r.WriteBytes),
				stats.FormatBytes(r.PeakDFS))
		}
	}
	fmt.Println(table.Render())

	// Part 2: the capacity cliff. Disks sized ~8x the input (the paper's
	// clusters sat in exactly this regime relative to their datasets).
	g, err := bench.Dataset("bsbm", 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	spec := bench.ClusterSpec{Nodes: 8, Replication: 2, CapacityRatio: 8}
	qr, err := bench.RunQuery(spec, g, cq, bench.AllEnginesScaled(2))
	if err != nil {
		log.Fatal(err)
	}
	cliff := &stats.Table{
		Title:  "B3 on a capacity-limited cluster (replication 2, disks ≈ 8x input)",
		Header: []string{"engine", "outcome", "failed job", "peak disk"},
	}
	for _, r := range qr.Runs {
		outcome := "completed"
		if !r.OK {
			outcome = "FAILED (out of disk)"
		}
		cliff.AddRow(r.Engine, outcome, r.FailedJob, stats.FormatBytes(r.PeakDFS))
	}
	fmt.Println(cliff.Render())
}
