# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-race bench figures cover fmt vet check chaos goldens

all: build check test

# Fast gate for every change: formatting, vet, and a race pass over the two
# packages with real concurrency (the MR engine and the simulated DFS).
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...
	go test -race ./internal/mapreduce/ ./internal/hdfs/
	go test ./internal/plan/ ./internal/explain/

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

test:
	go test ./...

test-race:
	go test -race ./...

# Full chaos sweep: every catalog query on every engine with mid-phase
# faults, node kills, and speculation armed (internal/integration/chaos_test.go).
chaos:
	go test ./internal/integration -run TestChaos -count=1 -timeout 15m

# One testing.B target per paper figure/table + per-query micros.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation as text tables.
figures:
	go run ./cmd/ntga-bench -fig all

# Regenerate the EXPLAIN golden files (internal/explain/testdata) after
# intentional planner or cost-model changes. CI fails if they are stale.
goldens:
	go test ./internal/explain/ -run TestExplainGoldens -update

cover:
	go test -cover ./...
