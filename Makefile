# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-race bench figures cover fmt vet check chaos goldens serve-smoke ingest-smoke dist-smoke loadgen-smoke partition-smoke partition-layout-smoke bench-trace bench-partition

all: build check test

# Fast gate for every change: formatting, vet, and a race pass over the
# packages with real concurrency (the MR engine, the simulated DFS, the
# query daemon, and the RPC cluster — the latter in -short mode, which
# still includes the seeded network-chaos and partition-recovery tests;
# the full cross-transport parity sweep runs with the ordinary test suite).
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...
	go test -race ./internal/mapreduce/ ./internal/hdfs/ ./internal/server/ ./internal/workload/ ./internal/core/hash64/
	go test -race -short ./internal/cluster/
	go test -race ./internal/ingest/
	go test ./internal/plan/ ./internal/explain/

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

test:
	go test ./...

test-race:
	go test -race ./...

# Full chaos sweep: every catalog query on every engine with mid-phase
# faults, node kills, and speculation armed (internal/integration/chaos_test.go).
chaos:
	go test ./internal/integration -run TestChaos -count=1 -timeout 15m

# One testing.B target per paper figure/table + per-query micros.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation as text tables.
figures:
	go run ./cmd/ntga-bench -fig all

# End-to-end daemon smoke test: boot ntga-serve, query it over HTTP twice
# (the repeat must be a result-cache hit with zero MR cycles), exercise the
# ntga-run client mode, and check /healthz and /metrics.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end incremental-ingestion smoke test: boot ntga-serve, prime the
# result cache, POST a delta batch through ntga-ingest (the unaffected
# cached entry must survive as a zero-cycle hit while the affected query
# re-executes and sees the delta rows), then run delta-merge compaction and
# assert the chain drains with the servable content unchanged.
ingest-smoke:
	sh scripts/ingest_smoke.sh

# End-to-end distributed smoke test: boot ntga-master + two ntga-worker
# processes over RPC, run a query through ntga-run -cluster, kill -9 one
# worker mid-run, and assert both runs print output byte-identical to a
# local ntga-run over the same data.
dist-smoke:
	sh scripts/dist_smoke.sh

# End-to-end partition-tolerance smoke test: boot ntga-master + two
# ntga-worker processes (one behind the seeded chaos transport), cut the
# worker↔master edge mid-query and assert recovery with local-identical
# output, then kill -9 the master, restart it, and assert both workers
# re-register and answer queries again (scripts/partition_smoke.sh).
partition-smoke:
	sh scripts/partition_smoke.sh

# End-to-end bucketed-layout smoke test: run a repeat-joined O-S chain
# query flat and with -partition-buckets (loader builds the hash-of-subject
# layout, the planner rewrites onto the map-only path), assert the
# partitioned workflow shuffled zero bytes, and byte-diff the sorted rows
# against the flat run (scripts/partition_layout_smoke.sh).
partition-layout-smoke:
	sh scripts/partition_layout_smoke.sh

# Regenerate BENCH_partition.json (the persisted flat-vs-bucketed layout
# comparison) at the current commit; fails if any cell lost its
# zero-shuffle property or regressed its partitioned shuffle volume more
# than 20% against the previously checked-in document.
bench-partition:
	sh scripts/bench_partition.sh

# End-to-end load-harness smoke test: replay a short seeded Zipf trace
# in-process and over HTTP (against a daemon running adaptive admission),
# asserting non-zero throughput and zero byte-level diffs vs the serial
# reference (scripts/loadgen_smoke.sh).
loadgen-smoke:
	sh scripts/loadgen_smoke.sh

# Regenerate BENCH_serve_trace.json (the persisted serve-latency
# trajectory) at the current commit; fails if any sweep cell's p95
# regressed more than 20% against the previously checked-in document.
bench-trace:
	sh scripts/bench_trace.sh

# Regenerate the EXPLAIN golden files (internal/explain/testdata) after
# intentional planner or cost-model changes. CI fails if they are stale.
goldens:
	go test ./internal/explain/ -run TestExplainGoldens -update

cover:
	go test -cover ./...
