# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-race bench figures cover fmt vet

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

test:
	go test ./...

test-race:
	go test -race ./...

# One testing.B target per paper figure/table + per-query micros.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation as text tables.
figures:
	go run ./cmd/ntga-bench -fig all

cover:
	go test -cover ./...
