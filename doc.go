// Package ntga is a from-scratch Go reproduction of "Scaling
// Unbound-Property Queries on Big RDF Data Warehouses using MapReduce"
// (Ravindra & Anyanwu, EDBT 2015): the Nested TripleGroup Data Model and
// Algebra (NTGA) extended with β group-filter and eager/lazy/partial
// β-unnest operators, executed on a simulated HDFS + MapReduce substrate,
// with Pig-style and Hive-style relational baselines and a benchmark
// harness that regenerates every figure of the paper's evaluation.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package ntga
